// Lane-structured pair-drift kernels — the innermost loops of
// accumulate_drift, batched over blocks of support::kSimdWidth candidates.
//
// Two row shapes cover every neighbor backend:
//
//  - DenseRow: the candidates' coordinates and types already sit in
//    contiguous lanes (a cell's 3×3 block gathered once per cell, or the
//    whole particle set for all-pairs). The kernel streams them directly.
//  - IndexedRow: the candidates are an index row (Verlet candidate rows,
//    Delaunay adjacency rows, generic neighbor spans) into the global
//    coordinate/type lanes; the kernel gathers per block.
//
// Both kernels compute, for row particle i,
//
//   drift_i = Σ_{candidates j} −F_αβ(‖Δz_ij‖) · Δz_ij
//
// masking out candidates with Δz = 0 (self in dense blocks, coincident
// pairs — the old path's zero contribution) and those at or beyond the
// cut-off. The candidate mask is idempotent: rows already pruned by the
// cut-off (Delaunay, generic neighbor spans) pass through unchanged.
//
// Bitwise contract (the reason this is a hand-written op sequence and not
// "whatever auto-vectorization does"): candidates are processed in index
// order in blocks of 4 — lane l of block b holds candidate 4b+l, the tail
// padded with the last valid candidate and masked dead. Each lane carries
// its own partial accumulator; the row reduces as ((l0+l1)+l2)+l3. The
// scalar kernels execute this exact sequence on plain arrays, the vector
// kernels on GNU vector types; every lane op is the same IEEE operation
// either way, so scalar and SIMD results are bitwise-identical — which the
// parity fuzzer asserts across every backend. Lane width never varies with
// the ISA (support::kSimdWidth is pinned); AVX2 dispatch only changes the
// instruction encoding of the identical 4-lane sequence.
#pragma once

#include <cstddef>
#include <cstdint>

#include "geom/vec2.hpp"
#include "sim/forces.hpp"

namespace sops::geom {
class CellGrid;
struct GatherScratch;
}  // namespace sops::geom

namespace sops::sim {

/// A particle against candidates whose coordinates/types are already
/// gathered into contiguous lanes. `cand_*` must stay valid for the call.
struct DenseRow {
  double xi;
  double yi;
  TypeId type_i;
  const double* cand_x;
  const double* cand_y;
  const TypeId* cand_type;
  std::size_t count;
  double cutoff_sq;  ///< may be +inf (unbounded r_c)
};

/// A particle against a packed candidate row: the Verlet accumulate path
/// filters each candidate row down to its in-cutoff survivors (FilterRow
/// below) into per-shard scratch lanes, then streams those lanes through
/// this shape. Same fields and — by construction — the exact op sequence of
/// DenseRow; it is a distinct shape so the Verlet dispatch (and its
/// packed-vs-indexed parity coverage) is explicit. Bitwise-identical to
/// IndexedRow whenever the packed lanes hold every candidate's gathered
/// values, which the parity fuzzer asserts.
struct PackedRow {
  double xi;
  double yi;
  TypeId type_i;
  const double* cand_x;
  const double* cand_y;
  const TypeId* cand_type;
  std::size_t count;
  double cutoff_sq;  ///< may be +inf (unbounded r_c)
};

/// A candidate index row to be compressed to its live survivors: gather
/// each candidate's current coordinates from the global lanes, keep those
/// with 0 < ‖Δz‖² < cutoff_sq, and write their coordinates/types
/// contiguously into `out_*`. The survivor predicate is exactly the dense
/// kernels' live-lane mask, so dropped candidates are ones that would have
/// contributed +0.0 — filtering changes which pairs reach the accumulator,
/// never the force arithmetic. Selection is exact comparison arithmetic, so
/// every ISA produces the same survivor sequence. Returns the survivor
/// count. `out_*` must have room for count + support::kSimdWidth entries:
/// the vector variants store whole compressed blocks, so up to one block of
/// slack past the final survivor is clobbered.
struct FilterRow {
  double xi;
  double yi;
  const double* xs;
  const double* ys;
  const TypeId* types;
  const std::uint32_t* candidates;
  std::size_t count;
  double cutoff_sq;  ///< may be +inf (unbounded r_c)
  double* out_x;
  double* out_y;
  TypeId* out_type;
};

/// A particle against an index row into the global coordinate/type lanes.
struct IndexedRow {
  double xi;
  double yi;
  TypeId type_i;
  const double* xs;
  const double* ys;
  const TypeId* types;
  const std::uint32_t* candidates;
  std::size_t count;
  double cutoff_sq;  ///< may be +inf (unbounded r_c)
};

/// A contiguous run of cells of a grid — one shard chunk of the cell-grid
/// drift path — processed in a single kernel call. Rows and candidates
/// stream from bucket-ordered lanes (`sx[k]` = x of CSR entry k), so the
/// kernel call overhead and the scaling-table loads are paid once per
/// chunk, each cell's 3×3 block is bulk-copied from the contiguous spans
/// of geom::CellGrid::block_spans(), and the per-row arithmetic is exactly
/// DenseRow's — the chunk entry changes scheduling, never the sequence.
struct DenseChunk {
  const double* sx;             ///< bucket-ordered x: sx[k] = x[order[k]]
  const double* sy;             ///< bucket-ordered y
  const TypeId* stype;          ///< bucket-ordered types
  const std::uint32_t* order;   ///< CSR entries: slot k → particle index
  const std::uint32_t* starts;  ///< CSR bucket starts (cell_count + 1)
  const geom::CellGrid* grid;   ///< block_spans() source for each cell
  std::size_t cell_begin;       ///< first cell of the chunk
  std::size_t cell_end;         ///< one past the last cell
  geom::GatherScratch* scratch; ///< per-shard candidate lane buffers
  geom::Vec2* out;              ///< drift output, indexed by particle id
  double cutoff_sq;
};

/// A contiguous run of particle positions over a CSR candidate list — one
/// shard chunk of the Verlet drift path — processed in a single kernel
/// call. Verlet rows are short (a dozen candidates at typical densities),
/// so the per-row dispatch overhead (indirect call, scaling-table pointer
/// setup, accumulator spill) rivals the row math itself; the chunk entry
/// pays it once per shard. Per-row arithmetic is exactly IndexedRow's — the
/// chunk entry changes scheduling, never the sequence — so chunked and
/// per-row accumulation are bitwise-identical, and since every out[i] is an
/// independent per-particle gather, so is any walk order.
struct IndexedChunk {
  const double* xs;             ///< global coordinate lanes
  const double* ys;
  const TypeId* types;
  const std::uint32_t* order;   ///< position k → particle; null = identity
                                ///< (the id-order walk streams the CSR
                                ///< arrays sequentially — prefer it)
  const std::size_t* offsets;   ///< per-particle CSR row offsets
  const std::uint32_t* indices; ///< CSR candidates, row-contiguous
  std::size_t begin;            ///< first walk position of the chunk
  std::size_t end;              ///< one past the last position
  geom::Vec2* out;              ///< drift output, indexed by particle id
  double cutoff_sq;
};

/// The kernel set accumulate_drift dispatches through. Plain function
/// pointers: the AVX2 variants live behind a CPUID check, and no vector
/// type ever crosses this ABI boundary.
struct DriftKernels {
  geom::Vec2 (*dense)(const PairScalingTable& table, const DenseRow& row);
  geom::Vec2 (*packed)(const PairScalingTable& table, const PackedRow& row);
  std::size_t (*filter)(const FilterRow& row);
  geom::Vec2 (*indexed)(const PairScalingTable& table, const IndexedRow& row);
  void (*dense_chunk)(const PairScalingTable& table, const DenseChunk& chunk);
  void (*indexed_chunk)(const PairScalingTable& table,
                        const IndexedChunk& chunk);
  /// Σ‖drift_i‖ with the summation strictly in index order — only the
  /// independent per-element norms are batched, so every variant returns
  /// the scalar loop's exact bits.
  double (*drift_norm)(const geom::Vec2* drift, std::size_t n);
};

/// Kernels for the current support::simd_policy(): the scalar reference
/// pair under kScalar, otherwise the vector pair for the best ISA this
/// build carries and the CPU supports. Cheap; call per accumulation.
[[nodiscard]] const DriftKernels& select_drift_kernels() noexcept;

/// The scalar reference kernels, unconditionally — the anchor the parity
/// fuzzer compares every other configuration against.
[[nodiscard]] const DriftKernels& scalar_drift_kernels() noexcept;

}  // namespace sops::sim
