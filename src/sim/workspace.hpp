// Reusable per-run scratch state of the simulation engine.
//
// A workspace owns everything a run needs besides the configuration: the
// drift buffer, the persistent neighbor backend, the RNG engine, and — when
// the run's resolved policy shards steps — the persistent TaskPool the
// per-step drift dispatch runs on. One workspace serves many runs back to
// back (the ensemble driver hands each worker thread one workspace for its
// whole chunk of samples), so buffer capacity, the backend's hash-map, and
// the pool's parked workers warm up once and are retained — steady-state
// stepping performs no allocation and no thread creation.
//
// An ensemble driver that already owns a pool lends a slice of it instead
// (`lend_executor`), so sample × step parallelism never exceeds the
// experiment's resolved budget in live threads.
//
// Not thread-safe: use one workspace per worker.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "geom/neighbor_backend.hpp"
#include "geom/vec2.hpp"
#include "rng/engine.hpp"
#include "sim/forces.hpp"
#include "support/executor.hpp"

namespace sops::geom {
class VerletListBackend;
}  // namespace sops::geom

namespace sops::sim {

struct SimulationConfig;

class SimulationWorkspace {
 public:
  /// Prepares the workspace for a run of `config`: resolves the neighbor
  /// strategy once, (re)creates the backend only when the resolved kind
  /// changed since the previous run, caches the run's pair-scaling table,
  /// and sizes the step executor — the lent one if set, otherwise an owned
  /// TaskPool of the resolved intra-step width (created on first use,
  /// reused while the width stays the same, serial for width 1). Scratch
  /// capacity is always retained.
  void prepare(const SimulationConfig& config);

  /// The persistent backend for the prepared run.
  [[nodiscard]] geom::NeighborBackend& backend();

  /// The backend as the Verlet-list backend when the prepared run resolved
  /// to NeighborMode::kVerletSkin; nullptr for every other mode. Ensemble
  /// drivers read rebuild/skip statistics through this (the list — and its
  /// stats — persists across the runs that share this workspace).
  [[nodiscard]] const geom::VerletListBackend* verlet_backend() const noexcept;

  /// The prepared run's dense pair-parameter table.
  [[nodiscard]] const PairScalingTable& scaling_table() const;

  [[nodiscard]] std::vector<geom::Vec2>& drift() noexcept { return drift_; }
  [[nodiscard]] rng::Xoshiro256& engine() noexcept { return engine_; }

  /// Borrows an executor for the intra-step drift dispatch instead of the
  /// workspace sizing its own pool — the ensemble driver lends each sample
  /// worker a disjoint slice of the experiment's pool this way. Pass
  /// nullptr to return to owned sizing. The lent executor must outlive
  /// every run that uses this workspace.
  void lend_executor(support::Executor* executor) noexcept {
    lent_executor_ = executor;
  }

  /// The executor the prepared run's per-step drift dispatch runs on.
  [[nodiscard]] support::Executor& step_executor() noexcept;

  /// Width of `step_executor()` — the threads the prepared run may spend
  /// inside each step's drift sum.
  [[nodiscard]] std::size_t step_threads() const noexcept {
    return step_threads_;
  }

 private:
  std::vector<geom::Vec2> drift_;
  std::unique_ptr<geom::NeighborBackend> backend_;
  std::optional<PairScalingTable> scaling_table_;
  rng::Xoshiro256 engine_{0};
  support::Executor* lent_executor_ = nullptr;
  std::unique_ptr<support::TaskPool> owned_pool_;
  support::SerialExecutor serial_executor_;
  std::size_t step_threads_ = 1;
};

}  // namespace sops::sim
