// Reusable per-run scratch state of the simulation engine.
//
// A workspace owns everything a run needs besides the configuration: the
// drift buffer, the persistent neighbor backend, and the RNG engine. One
// workspace serves many runs back to back (the ensemble driver hands each
// worker thread one workspace for its whole chunk of samples), so buffer
// capacity and the backend's hash-map warm up once and are retained —
// steady-state stepping performs no allocation.
//
// Not thread-safe: use one workspace per worker.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "geom/neighbor_backend.hpp"
#include "geom/vec2.hpp"
#include "rng/engine.hpp"
#include "sim/forces.hpp"

namespace sops::sim {

struct SimulationConfig;

class SimulationWorkspace {
 public:
  /// Prepares the workspace for a run of `config`: resolves the neighbor
  /// strategy once, (re)creates the backend only when the resolved kind
  /// changed since the previous run, and caches the run's pair-scaling
  /// table. Scratch capacity is always retained.
  void prepare(const SimulationConfig& config);

  /// The persistent backend for the prepared run.
  [[nodiscard]] geom::NeighborBackend& backend();

  /// The prepared run's dense pair-parameter table.
  [[nodiscard]] const PairScalingTable& scaling_table() const;

  [[nodiscard]] std::vector<geom::Vec2>& drift() noexcept { return drift_; }
  [[nodiscard]] rng::Xoshiro256& engine() noexcept { return engine_; }

  /// Threads the prepared run may spend inside each step's drift sum —
  /// the config's ParallelPolicy resolved for this single run (m = 1).
  [[nodiscard]] std::size_t step_threads() const noexcept {
    return step_threads_;
  }

 private:
  std::vector<geom::Vec2> drift_;
  std::unique_ptr<geom::NeighborBackend> backend_;
  std::optional<PairScalingTable> scaling_table_;
  rng::Xoshiro256 engine_{0};
  std::size_t step_threads_ = 1;
};

}  // namespace sops::sim
