// Thread-budget allocation between the engine's two axes of parallelism:
// across ensemble samples (PR 1) and within a single step's drift sum (the
// cell-sharded path). The policy is resolved exactly once per experiment —
// sample workers receive a fixed intra-step budget, so nested parallelism
// is prevented by construction: at most sample_threads × step_threads ≤
// threads workers are ever live, and a sample worker never re-splits.
//
// Rules of thumb encoded in kAuto (see README "Choosing a ParallelPolicy"):
// sample-parallelism is embarrassingly parallel and allocation-free per
// worker, so it wins whenever there are at least as many samples as
// threads; the sharded intra-step path pays one pool dispatch per step, so
// it needs large collectives (n ≥ kIntraStepMinParticles) to amortize and
// is reserved for ensembles too small to occupy the machine by themselves.
#pragma once

#include <cstddef>

namespace sops::sim {

/// How a run's thread budget is spent.
enum class ParallelPolicy {
  kAuto,           ///< pick from (n, m, threads); never worse than serial
  kAcrossSamples,  ///< all threads on ensemble samples (the PR 1 engine)
  kWithinStep,     ///< all threads inside each step's drift accumulation
  kHybrid,         ///< samples first, leftover threads inside each step
};

/// Collective size below which kAuto never shards a step. Re-derived for
/// the pooled executor: a step's dispatch onto parked workers measures
/// ~7 µs (BENCH_engine.json `dispatch`, vs ~35 µs for the fork/join that
/// set the previous floor of 2048), and a 512-particle cell-grid drift sum
/// costs a few hundred µs — the dispatch is low-single-digit percent
/// overhead at this size, where the old spawn cost would have eaten the
/// sharding gain.
inline constexpr std::size_t kIntraStepMinParticles = 512;

/// A resolved policy: how many workers run samples concurrently, and how
/// many threads each of those workers may use inside one step.
struct ThreadBudget {
  std::size_t sample_threads = 1;
  std::size_t step_threads = 1;
};

/// Splits `threads` (0 = hardware concurrency) for an ensemble of `m`
/// samples of an `n`-particle collective. The result always satisfies
/// sample_threads × step_threads ≤ max(threads, 1) and both factors ≥ 1.
[[nodiscard]] ThreadBudget resolve_parallel_policy(ParallelPolicy policy,
                                                   std::size_t n, std::size_t m,
                                                   std::size_t threads) noexcept;

/// The jobs axis of the generalized split (jobs × samples × steps): of a
/// machine-wide budget of `machine_threads` (0 = hardware concurrency)
/// shared by `job_slots` concurrently admitted jobs, slot `job_slot` owns
/// the chunk_range share of the budget, floored at 1 so a starved slot
/// still runs serially. The share is what resolve_parallel_policy then
/// splits into samples × steps — so the whole budget is still allocated
/// exactly once per job, before any fan-out, and concurrent jobs' shares
/// tile the machine the way one job's sample chunks tile its share.
[[nodiscard]] std::size_t resolve_job_threads(std::size_t job_slot,
                                              std::size_t job_slots,
                                              std::size_t machine_threads) noexcept;

/// resolve_parallel_policy applied to a job slot's share: the one-call
/// form of the jobs × samples × steps split.
[[nodiscard]] ThreadBudget resolve_job_policy(ParallelPolicy policy,
                                              std::size_t n, std::size_t m,
                                              std::size_t job_slot,
                                              std::size_t job_slots,
                                              std::size_t machine_threads) noexcept;

}  // namespace sops::sim
