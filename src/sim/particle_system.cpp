#include "sim/particle_system.hpp"

namespace sops::sim {

std::vector<TypeId> evenly_distributed_types(std::size_t n, std::size_t l) {
  support::expect(l > 0, "evenly_distributed_types: need at least one type");
  std::vector<TypeId> types(n);
  const std::size_t base = l == 0 ? 0 : n / l;
  const std::size_t extra = l == 0 ? 0 : n % l;
  std::size_t next = 0;
  for (std::size_t t = 0; t < l; ++t) {
    const std::size_t count = base + (t < extra ? 1 : 0);
    for (std::size_t i = 0; i < count; ++i) types[next++] = static_cast<TypeId>(t);
  }
  return types;
}

std::vector<std::size_t> type_histogram(std::span<const TypeId> types,
                                        std::size_t type_count) {
  std::vector<std::size_t> histogram(type_count, 0);
  for (const TypeId t : types) {
    support::expect(t < type_count, "type_histogram: type id out of range");
    ++histogram[t];
  }
  return histogram;
}

}  // namespace sops::sim
