#include "sim/symmetric_matrix.hpp"

#include <algorithm>

namespace sops::sim {

SymmetricMatrix SymmetricMatrix::from_full(
    const std::vector<std::vector<double>>& full) {
  const std::size_t l = full.size();
  SymmetricMatrix m(l);
  for (std::size_t a = 0; a < l; ++a) {
    support::expect(full[a].size() == l,
                    "SymmetricMatrix::from_full: matrix not square");
    for (std::size_t b = a; b < l; ++b) {
      support::expect(full[a][b] == full[b][a],
                      "SymmetricMatrix::from_full: matrix not symmetric");
      m.set(a, b, full[a][b]);
    }
  }
  return m;
}

double SymmetricMatrix::min_entry() const noexcept {
  if (data_.empty()) return 0.0;
  return *std::min_element(data_.begin(), data_.end());
}

double SymmetricMatrix::max_entry() const noexcept {
  if (data_.empty()) return 0.0;
  return *std::max_element(data_.begin(), data_.end());
}

}  // namespace sops::sim
