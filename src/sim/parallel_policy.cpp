#include "sim/parallel_policy.hpp"

#include <algorithm>

#include "support/executor.hpp"

namespace sops::sim {
namespace {

ThreadBudget across_samples(std::size_t m, std::size_t threads) noexcept {
  return {std::min(threads, m), 1};
}

ThreadBudget hybrid(std::size_t m, std::size_t threads) noexcept {
  // Pick the sample share that wastes the least of the budget: the product
  // sample × (threads / sample) strands threads whenever sample does not
  // divide them (e.g. m = 5, threads = 8: 5×1 uses 5 of 8; 4×2 uses all).
  // Ties go to more sample workers — that axis has no per-step fork cost.
  std::size_t best_sample = 1;
  std::size_t best_used = 0;
  for (std::size_t sample = std::min(threads, m); sample >= 1; --sample) {
    const std::size_t used = sample * (threads / sample);
    if (used > best_used) {
      best_used = used;
      best_sample = sample;
    }
  }
  return {best_sample, std::max<std::size_t>(threads / best_sample, 1)};
}

}  // namespace

ThreadBudget resolve_parallel_policy(ParallelPolicy policy, std::size_t n,
                                     std::size_t m,
                                     std::size_t threads) noexcept {
  if (threads == 0) threads = support::default_thread_count();
  threads = std::max<std::size_t>(threads, 1);
  m = std::max<std::size_t>(m, 1);

  switch (policy) {
    case ParallelPolicy::kAcrossSamples:
      return across_samples(m, threads);
    case ParallelPolicy::kWithinStep:
      return {1, threads};
    case ParallelPolicy::kHybrid:
      return hybrid(m, threads);
    case ParallelPolicy::kAuto:
      break;
  }
  // kAuto: enough samples to fill the machine, or a collective too small to
  // amortize the per-step dispatch → sample-parallelism only. A single huge
  // collective goes fully intra-step; in between, samples claim threads
  // first and each sample worker shards its steps with the leftovers.
  if (m >= threads || n < kIntraStepMinParticles) {
    return across_samples(m, threads);
  }
  if (m == 1) return {1, threads};
  return hybrid(m, threads);
}

std::size_t resolve_job_threads(std::size_t job_slot, std::size_t job_slots,
                                std::size_t machine_threads) noexcept {
  if (machine_threads == 0) machine_threads = support::default_thread_count();
  job_slots = std::max<std::size_t>(job_slots, 1);
  if (job_slot >= job_slots) job_slot = job_slots - 1;
  const support::ChunkRange share =
      support::chunk_range(job_slot, machine_threads, job_slots);
  return std::max<std::size_t>(share.end - share.begin, 1);
}

ThreadBudget resolve_job_policy(ParallelPolicy policy, std::size_t n,
                                std::size_t m, std::size_t job_slot,
                                std::size_t job_slots,
                                std::size_t machine_threads) noexcept {
  return resolve_parallel_policy(
      policy, n, m, resolve_job_threads(job_slot, job_slots, machine_threads));
}

}  // namespace sops::sim
