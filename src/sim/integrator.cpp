#include "sim/integrator.hpp"

#include "rng/samplers.hpp"

namespace sops::sim {

void apply_euler_maruyama_update(ParticleSystem& system,
                                 std::span<const geom::Vec2> drift,
                                 const IntegratorParams& params,
                                 rng::Xoshiro256& engine) {
  support::expect(params.dt > 0.0,
                  "apply_euler_maruyama_update: dt must be positive");
  support::expect(params.noise_variance >= 0.0,
                  "apply_euler_maruyama_update: negative noise variance");
  support::expect(drift.size() == system.size(),
                  "apply_euler_maruyama_update: drift size mismatch");

  const double noise_scale =
      std::sqrt(params.dt) * std::sqrt(params.noise_variance);
  const double max_step_sq =
      params.max_step > 0.0 ? params.max_step * params.max_step : 0.0;

  for (std::size_t i = 0; i < system.size(); ++i) {
    geom::Vec2 step = drift[i] * params.dt;
    if (max_step_sq > 0.0 && geom::norm_sq(step) > max_step_sq) {
      step *= params.max_step / geom::norm(step);
    }
    if (noise_scale > 0.0) {
      step += rng::normal_vec2(engine, 1.0) * noise_scale;
    }
    system.translate(i, step);
  }
}

double euler_maruyama_step(ParticleSystem& system, const InteractionModel& model,
                           double cutoff_radius, const IntegratorParams& params,
                           rng::Xoshiro256& engine,
                           std::vector<geom::Vec2>& drift_scratch,
                           NeighborMode mode) {
  accumulate_drift(system, model, cutoff_radius, drift_scratch, mode);
  const double residual = total_drift_norm(drift_scratch);
  apply_euler_maruyama_update(system, drift_scratch, params, engine);
  return residual;
}

double euler_maruyama_step(ParticleSystem& system, const InteractionModel& model,
                           double cutoff_radius, const IntegratorParams& params,
                           rng::Xoshiro256& engine,
                           std::vector<geom::Vec2>& drift_scratch,
                           geom::NeighborBackend& backend) {
  accumulate_drift(system, model, cutoff_radius, drift_scratch, backend);
  const double residual = total_drift_norm(drift_scratch);
  apply_euler_maruyama_update(system, drift_scratch, params, engine);
  return residual;
}

}  // namespace sops::sim
