// Symmetric l×l parameter matrices (k_αβ, r_αβ, σ_αβ, τ_αβ).
//
// The paper only considers symmetric interaction matrices — asymmetric ones
// lead to "unstable dynamics or cycling patterns" (§4.1) — so symmetry is
// enforced structurally: only the upper triangle is stored and both (α,β)
// orders read the same entry.
#pragma once

#include <cstddef>
#include <vector>

#include "support/error.hpp"

namespace sops::sim {

/// Symmetric matrix over particle types, stored as the upper triangle.
class SymmetricMatrix {
 public:
  SymmetricMatrix() = default;

  /// l×l matrix with every entry set to `fill`.
  explicit SymmetricMatrix(std::size_t types, double fill = 0.0)
      : types_(types), data_(types * (types + 1) / 2, fill) {}

  /// Builds from a full row-major matrix; throws if it is not symmetric.
  static SymmetricMatrix from_full(
      const std::vector<std::vector<double>>& full);

  /// Number of types l.
  [[nodiscard]] std::size_t types() const noexcept { return types_; }

  /// Entry (a, b) == entry (b, a).
  [[nodiscard]] double operator()(std::size_t a, std::size_t b) const {
    return data_[flat_index(a, b)];
  }

  /// Sets entry (a, b) and (b, a) simultaneously.
  void set(std::size_t a, std::size_t b, double value) {
    data_[flat_index(a, b)] = value;
  }

  /// Smallest entry (useful for validation); 0 for empty matrices.
  [[nodiscard]] double min_entry() const noexcept;
  /// Largest entry; 0 for empty matrices.
  [[nodiscard]] double max_entry() const noexcept;

  friend bool operator==(const SymmetricMatrix&, const SymmetricMatrix&) = default;

 private:
  [[nodiscard]] std::size_t flat_index(std::size_t a, std::size_t b) const {
    support::expect(a < types_ && b < types_,
                    "SymmetricMatrix: type index out of range");
    if (a > b) std::swap(a, b);
    // Row-major upper triangle: row a contributes (types_ - a) entries.
    return a * types_ - a * (a + 1) / 2 + b;
  }

  std::size_t types_ = 0;
  std::vector<double> data_;
};

}  // namespace sops::sim
