#include "sim/simulation.hpp"

#include "rng/samplers.hpp"

namespace sops::sim {

std::vector<geom::Vec2> sample_initial_disc(std::size_t n, double radius,
                                            rng::Xoshiro256& engine) {
  support::expect(radius > 0.0, "sample_initial_disc: radius must be positive");
  std::vector<geom::Vec2> positions;
  positions.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    positions.push_back(rng::uniform_disc(engine, radius));
  }
  return positions;
}

Trajectory run_simulation(const SimulationConfig& config) {
  support::expect(!config.types.empty(), "run_simulation: no particles");
  support::expect(config.record_stride >= 1,
                  "run_simulation: record_stride must be >= 1");
  support::expect(config.steps >= 1, "run_simulation: steps must be >= 1");

  rng::Xoshiro256 engine = rng::make_stream(config.seed, config.stream);

  ParticleSystem system(
      sample_initial_disc(config.types.size(), config.init_disc_radius, engine),
      config.types);
  support::expect(system.types_within(config.model.types()),
                  "run_simulation: particle type outside the model");

  Trajectory trajectory;
  trajectory.types = config.types;

  EquilibriumDetector equilibrium(config.equilibrium.threshold,
                                  config.equilibrium.hold_steps);
  std::vector<geom::Vec2> drift_scratch;

  // Records the current configuration plus the residual Σ‖drift_i‖ of that
  // exact configuration (recomputed; strided recording makes this cheap).
  auto record = [&](std::size_t step) {
    accumulate_drift(system, config.model, config.cutoff_radius, drift_scratch,
                     config.neighbor_mode);
    trajectory.frames.push_back(system.positions);
    trajectory.frame_steps.push_back(step);
    trajectory.residual_norms.push_back(total_drift_norm(drift_scratch));
  };

  record(0);

  for (std::size_t step = 1; step <= config.steps; ++step) {
    const double residual = euler_maruyama_step(
        system, config.model, config.cutoff_radius, config.integrator, engine,
        drift_scratch, config.neighbor_mode);

    const bool was_triggered = equilibrium.triggered();
    equilibrium.update(residual);
    if (!was_triggered && equilibrium.triggered()) {
      trajectory.equilibrium_step = step;
    }

    if (step % config.record_stride == 0 || step == config.steps) {
      record(step);
    }
    if (config.stop_at_equilibrium && equilibrium.triggered()) {
      if (trajectory.frame_steps.back() != step) record(step);
      break;
    }
  }
  return trajectory;
}

}  // namespace sops::sim
