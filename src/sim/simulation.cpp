#include "sim/simulation.hpp"

#include "rng/samplers.hpp"

namespace sops::sim {

std::vector<std::size_t> recording_steps(std::size_t steps, std::size_t stride) {
  support::expect(steps >= 1, "recording_steps: steps must be >= 1");
  support::expect(stride >= 1, "recording_steps: stride must be >= 1");
  std::vector<std::size_t> out{0};
  for (std::size_t s = stride; s < steps; s += stride) out.push_back(s);
  out.push_back(steps);
  return out;
}

std::vector<geom::Vec2> sample_initial_disc(std::size_t n, double radius,
                                            rng::Xoshiro256& engine) {
  support::expect(radius > 0.0, "sample_initial_disc: radius must be positive");
  std::vector<geom::Vec2> positions;
  positions.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    positions.push_back(rng::uniform_disc(engine, radius));
  }
  return positions;
}

StreamedRun run_simulation_streamed(const SimulationConfig& config,
                                    SimulationWorkspace& workspace,
                                    const FrameRecorder& record_frame) {
  support::expect(!config.types.empty(), "run_simulation: no particles");
  support::expect(config.record_stride >= 1,
                  "run_simulation: record_stride must be >= 1");
  support::expect(config.steps >= 1, "run_simulation: steps must be >= 1");
  support::expect(config.track_equilibrium || !config.stop_at_equilibrium,
                  "run_simulation: stop_at_equilibrium needs track_equilibrium");

  workspace.prepare(config);
  rng::Xoshiro256& engine = workspace.engine();
  engine = rng::make_stream(config.seed, config.stream);

  ParticleSystem system(
      sample_initial_disc(config.types.size(), config.init_disc_radius, engine),
      config.types);
  support::expect(system.types_within(config.model.types()),
                  "run_simulation: particle type outside the model");

  EquilibriumDetector equilibrium(config.equilibrium.threshold,
                                  config.equilibrium.hold_steps);
  std::vector<geom::Vec2>& drift = workspace.drift();
  geom::NeighborBackend& backend = workspace.backend();

  StreamedRun out;
  // The recording grid has exactly one definition; equilibrium stops may
  // additionally record off-grid steps.
  const std::vector<std::size_t> grid =
      recording_steps(config.steps, config.record_stride);
  std::size_t next_grid_index = 0;

  // Each configuration's drift is computed exactly once and shared between
  // recording (frame t's residual), integration (the step t → t+1), and
  // equilibrium detection (which consumes residuals of steps 0..steps−1).
  bool stop_now = false;
  // One executor for the whole run: the workspace's persistent pool (or a
  // slice lent by the ensemble driver), so per-step sharding is a dispatch
  // onto parked workers, not a fork/join.
  support::Executor& step_executor = workspace.step_executor();
  for (std::size_t t = 0;; ++t) {
    // The per-step poll point: a cancelled run stops before the next
    // drift evaluation, so cancellation latency is one step, not one
    // sample.
    support::CancelToken::check(config.cancel, "simulation cancelled");
    accumulate_drift(system, workspace.scaling_table(), config.cutoff_radius,
                     drift, backend, step_executor);

    const bool on_grid =
        next_grid_index < grid.size() && grid[next_grid_index] == t;
    if (on_grid) ++next_grid_index;
    const bool record_now = on_grid || stop_now;
    double residual = 0.0;
    if (config.track_equilibrium || record_now) {
      residual = total_drift_norm(drift);
    }
    if (record_now) {
      out.frame_steps.push_back(t);
      out.residual_norms.push_back(residual);
      record_frame(out.frame_steps.size() - 1, t, system.lanes());
    }
    if (t == config.steps || stop_now) break;

    apply_euler_maruyama_update(system, drift, config.integrator, engine);

    if (config.track_equilibrium) {
      const bool was_triggered = equilibrium.triggered();
      equilibrium.update(residual);
      if (!was_triggered && equilibrium.triggered()) {
        out.equilibrium_step = t + 1;
      }
      // The run ends at the step where the criterion held: loop once more to
      // record the post-step configuration, then break before advancing.
      if (config.stop_at_equilibrium && equilibrium.triggered()) stop_now = true;
    }
  }
  return out;
}

Trajectory run_simulation(const SimulationConfig& config,
                          SimulationWorkspace& workspace) {
  Trajectory trajectory;
  trajectory.types = config.types;
  StreamedRun run = run_simulation_streamed(
      config, workspace,
      [&trajectory](std::size_t, std::size_t, geom::PositionLanes positions) {
        geom::interleave(positions, trajectory.frames.emplace_back());
      });
  trajectory.frame_steps = std::move(run.frame_steps);
  trajectory.residual_norms = std::move(run.residual_norms);
  trajectory.equilibrium_step = run.equilibrium_step;
  return trajectory;
}

Trajectory run_simulation(const SimulationConfig& config) {
  SimulationWorkspace workspace;
  return run_simulation(config, workspace);
}

}  // namespace sops::sim
