#include "sim/detectors.hpp"

#include <cmath>

#include "geom/rigid_transform.hpp"
#include "support/error.hpp"

namespace sops::sim {

EquilibriumDetector::EquilibriumDetector(double threshold,
                                         std::size_t hold_steps)
    : threshold_(threshold), hold_steps_(hold_steps) {
  support::expect(threshold > 0.0,
                  "EquilibriumDetector: threshold must be positive");
  support::expect(hold_steps > 0,
                  "EquilibriumDetector: hold_steps must be positive");
}

bool EquilibriumDetector::update(double residual_norm) noexcept {
  if (triggered_) return true;
  if (residual_norm < threshold_) {
    ++streak_;
    if (streak_ >= hold_steps_) triggered_ = true;
  } else {
    streak_ = 0;
  }
  return triggered_;
}

LimitCycleDetector::LimitCycleDetector(double tolerance, std::size_t min_period,
                                       std::size_t window)
    : tolerance_(tolerance), min_period_(min_period), window_(window) {
  support::expect(tolerance > 0.0,
                  "LimitCycleDetector: tolerance must be positive");
  support::expect(min_period >= 1, "LimitCycleDetector: min_period must be >= 1");
  support::expect(window > min_period,
                  "LimitCycleDetector: window must exceed min_period");
}

std::optional<CycleMatch> LimitCycleDetector::update(
    std::span<const geom::Vec2> positions) {
  std::vector<geom::Vec2> snapshot =
      positions.empty() ? std::vector<geom::Vec2>{}
                        : geom::centered(positions);

  std::optional<CycleMatch> best;
  // history_.back() is lag 1; search smallest lag ≥ min_period first.
  for (std::size_t lag = min_period_; lag <= history_.size(); ++lag) {
    const auto& past = history_[history_.size() - lag];
    if (past.size() != snapshot.size()) continue;
    double total = 0.0;
    for (std::size_t i = 0; i < snapshot.size(); ++i) {
      total += geom::dist(snapshot[i], past[i]);
    }
    const double mean_error =
        snapshot.empty() ? 0.0 : total / static_cast<double>(snapshot.size());
    if (mean_error < tolerance_) {
      best = CycleMatch{lag, mean_error};
      break;
    }
  }

  history_.push_back(std::move(snapshot));
  while (history_.size() > window_) history_.pop_front();
  return best;
}

}  // namespace sops::sim
