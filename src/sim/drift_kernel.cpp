#include "sim/drift_kernel.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstring>
#include <utility>

#include "geom/cell_grid.hpp"
#include "geom/position_lanes.hpp"
#include "support/simd.hpp"

// The 256-bit GNU vector types below never cross a non-inlined function
// boundary (the kernel ABI passes pointers and returns Vec2), so GCC's
// psabi note about 256-bit vector ABI in baseline code is noise here.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wpsabi"
#endif

// The AVX2 variants are plain C++ behind a per-function target attribute —
// no separately-flagged translation unit, so no inline helper is ever
// compiled under AVX2 flags except where it is force-inlined into the
// wrappers below (which only ever run behind the CPUID check).
#if defined(SOPS_HAVE_VECTOR_EXT) && defined(SOPS_SIMD_DISPATCH_AVX2) && \
    (defined(__x86_64__) || defined(__i386__))
#define SOPS_KERNEL_AVX2 1
#else
#define SOPS_KERNEL_AVX2 0
#endif

#if SOPS_KERNEL_AVX2
#include <immintrin.h>
#endif

namespace sops::sim {
namespace {

using geom::Vec2;
using support::kSimdWidth;

// ----------------------------------------------------------------- scalar
// The reference op sequence on plain arrays; every vector path below must
// mirror it lane-for-lane (the header's bitwise contract).

// One block: candidate coordinates and pair parameters already in lanes,
// the tail beyond `m` padded by the caller and masked dead here.
inline void scalar_block(ForceLawKind kind, double xi, double yi,
                         double cutoff_sq, std::size_t m, const double* cx,
                         const double* cy, const double* kp, const double* rp,
                         const double* sp, const double* tp, double* accx,
                         double* accy) {
  double dx[kSimdWidth];
  double dy[kSimdWidth];
  double d2[kSimdWidth];
  double dist[kSimdWidth];
  double s[kSimdWidth];
  bool live[kSimdWidth];
  for (std::size_t l = 0; l < kSimdWidth; ++l) {
    dx[l] = xi - cx[l];
    dy[l] = yi - cy[l];
    d2[l] = dx[l] * dx[l] + dy[l] * dy[l];
    // Δz = 0 (self in dense blocks, coincident pairs) contributes zero —
    // the undefined-direction rule of accumulate_drift's header.
    live[l] = l < m && d2[l] < cutoff_sq && d2[l] != 0.0;
    // Dead lanes evaluate the force law at distance 1 and discard it: the
    // blend keeps sqrt and the law's divisions off 0 without branching.
    dist[l] = live[l] ? d2[l] : 1.0;
  }
  for (std::size_t l = 0; l < kSimdWidth; ++l) dist[l] = std::sqrt(dist[l]);
  force_scaling_lanes(kind, kp, rp, sp, tp, dist, s);
  for (std::size_t l = 0; l < kSimdWidth; ++l) {
    const double w = live[l] ? -s[l] : 0.0;
    accx[l] += dx[l] * w;
    accy[l] += dy[l] * w;
  }
}

// A PackedRow is a DenseRow whose lanes happen to be a Verlet backend's
// row-contiguous candidate slices; the kernels are shared by converting the
// view, so the op sequence is the dense one by construction.
__attribute__((always_inline)) inline DenseRow as_dense(const PackedRow& row) {
  return DenseRow{row.xi,     row.yi,        row.type_i, row.cand_x,
                  row.cand_y, row.cand_type, row.count,  row.cutoff_sq};
}

Vec2 dense_scalar(const PairScalingTable& table, const DenseRow& row) {
  const std::size_t base = table.pair_base(row.type_i);
  const double* tk = table.k_data();
  const double* tr = table.r_data();
  const double* tsg = table.sigma_data();
  const double* ttu = table.tau_data();
  double accx[kSimdWidth] = {};
  double accy[kSimdWidth] = {};
  for (std::size_t b = 0; b < row.count; b += kSimdWidth) {
    const std::size_t m = std::min(kSimdWidth, row.count - b);
    double cx[kSimdWidth];
    double cy[kSimdWidth];
    double kp[kSimdWidth];
    double rp[kSimdWidth];
    double sp[kSimdWidth];
    double tp[kSimdWidth];
    for (std::size_t l = 0; l < kSimdWidth; ++l) {
      const std::size_t c = b + (l < m ? l : m - 1);  // pad with last valid
      cx[l] = row.cand_x[c];
      cy[l] = row.cand_y[c];
      const std::size_t e = base + row.cand_type[c];
      kp[l] = tk[e];
      rp[l] = tr[e];
      sp[l] = tsg[e];
      tp[l] = ttu[e];
    }
    scalar_block(table.kind(), row.xi, row.yi, row.cutoff_sq, m, cx, cy, kp,
                 rp, sp, tp, accx, accy);
  }
  return {((accx[0] + accx[1]) + accx[2]) + accx[3],
          ((accy[0] + accy[1]) + accy[2]) + accy[3]};
}

// Copies the 3×3 block of `cell` from the chunk's bucket-ordered lanes
// into the scratch candidate lanes and returns the candidate count. The
// block is at most 3 contiguous CSR ranges, so this is bulk range copies —
// identical contents (and hence identical kernel arithmetic) to the
// per-index gather it replaces. Scratch only ever grows; the kernels read
// exactly `m` lanes.
inline std::size_t gather_cell_block(const DenseChunk& chunk, std::size_t cell,
                                     geom::GatherScratch& s) {
  std::array<std::pair<std::uint32_t, std::uint32_t>, 3> spans;
  const std::size_t nspans = chunk.grid->block_spans(cell, spans);
  std::size_t m = 0;
  for (std::size_t i = 0; i < nspans; ++i) {
    m += spans[i].second - spans[i].first;
  }
  if (s.x.size() < m) {
    s.x.resize(m);
    s.y.resize(m);
    s.tag.resize(m);
  }
  std::size_t off = 0;
  for (std::size_t i = 0; i < nspans; ++i) {
    const std::size_t b = spans[i].first;
    const std::size_t len = spans[i].second - b;
    std::memcpy(s.x.data() + off, chunk.sx + b, len * sizeof(double));
    std::memcpy(s.y.data() + off, chunk.sy + b, len * sizeof(double));
    std::memcpy(s.tag.data() + off, chunk.stype + b, len * sizeof(TypeId));
    off += len;
  }
  return m;
}

// The chunk loop shared by every dense_chunk variant: gather each cell's
// block once, then run the row kernel for each of the cell's particles.
// `RowKernel` is a functor type whose operator() is force-inlined, so the
// whole loop (row math included) code-generates inside the ISA wrapper it
// is instantiated in.
template <typename RowKernel>
__attribute__((always_inline)) inline void dense_chunk_loop(
    const PairScalingTable& table, const DenseChunk& chunk,
    const RowKernel& row_kernel) {
  geom::GatherScratch& s = *chunk.scratch;
  for (std::size_t c = chunk.cell_begin; c < chunk.cell_end; ++c) {
    const std::size_t m = gather_cell_block(chunk, c, s);
    for (std::uint32_t k = chunk.starts[c]; k < chunk.starts[c + 1]; ++k) {
      const DenseRow row{chunk.sx[k], chunk.sy[k],  chunk.stype[k],
                         s.x.data(),  s.y.data(),   s.tag.data(),
                         m,           chunk.cutoff_sq};
      chunk.out[chunk.order[k]] = row_kernel(table, row);
    }
  }
}

struct DenseScalarRow {
  Vec2 operator()(const PairScalingTable& table, const DenseRow& row) const {
    return dense_scalar(table, row);
  }
};

void dense_chunk_scalar(const PairScalingTable& table,
                        const DenseChunk& chunk) {
  dense_chunk_loop(table, chunk, DenseScalarRow{});
}

// The chunk loop shared by every indexed_chunk variant: one kernel call per
// shard walks the chunk's slice of the frozen ordering and runs the
// force-inlined indexed row body for each particle — per-row arithmetic is
// untouched, only the dispatch overhead is amortized.
template <typename RowKernel>
__attribute__((always_inline)) inline void indexed_chunk_loop(
    const PairScalingTable& table, const IndexedChunk& chunk,
    const RowKernel& row_kernel) {
  // Two plain loops, no helper lambda: the row body must stay on the
  // always_inline chain into the ISA-targeted wrappers (a lambda here is
  // not `target`-compatible, so GCC outlines it — and the outlined copy
  // codegens without the wrapper's ISA).
  if (chunk.order == nullptr) {
    // Identity walk: position k is particle k, so the CSR arrays stream
    // sequentially — the fast path for backends whose rows sit in id order.
    for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
      const IndexedRow row{chunk.xs[i],
                           chunk.ys[i],
                           chunk.types[i],
                           chunk.xs,
                           chunk.ys,
                           chunk.types,
                           chunk.indices + chunk.offsets[i],
                           chunk.offsets[i + 1] - chunk.offsets[i],
                           chunk.cutoff_sq};
      chunk.out[i] = row_kernel(table, row);
    }
  } else {
    for (std::size_t k = chunk.begin; k < chunk.end; ++k) {
      const std::size_t i = chunk.order[k];
      const IndexedRow row{chunk.xs[i],
                           chunk.ys[i],
                           chunk.types[i],
                           chunk.xs,
                           chunk.ys,
                           chunk.types,
                           chunk.indices + chunk.offsets[i],
                           chunk.offsets[i + 1] - chunk.offsets[i],
                           chunk.cutoff_sq};
      chunk.out[i] = row_kernel(table, row);
    }
  }
}

struct IndexedScalarRow {
  Vec2 operator()(const PairScalingTable& table, const IndexedRow& row) const;
};

void indexed_chunk_scalar(const PairScalingTable& table,
                          const IndexedChunk& chunk) {
  indexed_chunk_loop(table, chunk, IndexedScalarRow{});
}

double drift_norm_scalar(const Vec2* drift, std::size_t n) {
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += std::sqrt(drift[i].x * drift[i].x + drift[i].y * drift[i].y);
  }
  return total;
}

Vec2 packed_scalar(const PairScalingTable& table, const PackedRow& row) {
  return dense_scalar(table, as_dense(row));
}

// The reference compress: branchless — every candidate writes its survivor
// slot, the write cursor only advances past live ones. The predicate is
// scalar_block's live mask verbatim (minus the tail test, which the row
// count supplies), and comparison arithmetic is exact, so every ISA keeps
// the identical survivor sequence.
std::size_t filter_scalar(const FilterRow& row) {
  std::size_t kept = 0;
  for (std::size_t c = 0; c < row.count; ++c) {
    const std::size_t j = row.candidates[c];
    const double cx = row.xs[j];
    const double cy = row.ys[j];
    const double dx = row.xi - cx;
    const double dy = row.yi - cy;
    const double d2 = dx * dx + dy * dy;
    row.out_x[kept] = cx;
    row.out_y[kept] = cy;
    row.out_type[kept] = row.types[j];
    kept += (d2 < row.cutoff_sq && d2 != 0.0) ? 1 : 0;
  }
  return kept;
}

Vec2 indexed_scalar(const PairScalingTable& table, const IndexedRow& row) {
  const std::size_t base = table.pair_base(row.type_i);
  const double* tk = table.k_data();
  const double* tr = table.r_data();
  const double* tsg = table.sigma_data();
  const double* ttu = table.tau_data();
  double accx[kSimdWidth] = {};
  double accy[kSimdWidth] = {};
  for (std::size_t b = 0; b < row.count; b += kSimdWidth) {
    const std::size_t m = std::min(kSimdWidth, row.count - b);
    double cx[kSimdWidth];
    double cy[kSimdWidth];
    double kp[kSimdWidth];
    double rp[kSimdWidth];
    double sp[kSimdWidth];
    double tp[kSimdWidth];
    for (std::size_t l = 0; l < kSimdWidth; ++l) {
      const std::size_t c = b + (l < m ? l : m - 1);  // pad with last valid
      const std::size_t j = row.candidates[c];
      cx[l] = row.xs[j];
      cy[l] = row.ys[j];
      const std::size_t e = base + row.types[j];
      kp[l] = tk[e];
      rp[l] = tr[e];
      sp[l] = tsg[e];
      tp[l] = ttu[e];
    }
    scalar_block(table.kind(), row.xi, row.yi, row.cutoff_sq, m, cx, cy, kp,
                 rp, sp, tp, accx, accy);
  }
  return {((accx[0] + accx[1]) + accx[2]) + accx[3],
          ((accy[0] + accy[1]) + accy[2]) + accy[3]};
}

Vec2 IndexedScalarRow::operator()(const PairScalingTable& table,
                                  const IndexedRow& row) const {
  return indexed_scalar(table, row);
}

#if defined(SOPS_HAVE_VECTOR_EXT)

// ----------------------------------------------------------------- vector
// The identical sequence on GNU vector types. Bodies are force-inlined into
// thin per-ISA wrappers; the target attribute on the AVX2 wrappers re-codes
// the same IEEE ops, so all wrappers produce the same bits.

using support::v4d;
using support::v4m;

// All-ones lane prefixes: kLaneMask[m] keeps the first m lanes live.
constexpr v4m kLaneMask[kSimdWidth + 1] = {
    {0, 0, 0, 0},
    {-1, 0, 0, 0},
    {-1, -1, 0, 0},
    {-1, -1, -1, 0},
    {-1, -1, -1, -1},
};

__attribute__((always_inline)) inline v4d v4_select(v4m mask, v4d a, v4d b) {
  return std::bit_cast<v4d>((std::bit_cast<v4m>(a) & mask) |
                            (std::bit_cast<v4m>(b) & ~mask));
}

__attribute__((always_inline)) inline void vector_block(
    ForceLawKind kind, v4d xiv, v4d yiv, v4d cutv, v4m tail, v4d cxv, v4d cyv,
    v4d kpv, v4d rpv, v4d spv, v4d tpv, v4d& accx, v4d& accy) {
  const v4d ones = {1.0, 1.0, 1.0, 1.0};
  const v4d zeros = {0.0, 0.0, 0.0, 0.0};
  const v4d dxv = xiv - cxv;
  const v4d dyv = yiv - cyv;
  const v4d d2v = dxv * dxv + dyv * dyv;
  const v4m live =
      std::bit_cast<v4m>(d2v < cutv) & std::bit_cast<v4m>(d2v != zeros) & tail;
  v4d distv = v4_select(live, d2v, ones);
  for (std::size_t l = 0; l < kSimdWidth; ++l) distv[l] = std::sqrt(distv[l]);
  v4d sv;
  if (kind == ForceLawKind::kSpring) {
    // F¹ stays fully in lanes: element-wise IEEE div/sub/mul are the exact
    // expressions of force_scaling_lanes.
    sv = kpv * (ones - rpv / distv);
  } else {
    // F² needs exp, which has no vector form here; round-trip through the
    // same per-lane helper the scalar kernel uses — bitwise-identical by
    // construction.
    double xa[kSimdWidth];
    double ka[kSimdWidth];
    double ra[kSimdWidth];
    double sga[kSimdWidth];
    double ta[kSimdWidth];
    double oa[kSimdWidth];
    for (std::size_t l = 0; l < kSimdWidth; ++l) {
      xa[l] = distv[l];
      ka[l] = kpv[l];
      ra[l] = rpv[l];
      sga[l] = spv[l];
      ta[l] = tpv[l];
    }
    force_scaling_lanes(kind, ka, ra, sga, ta, xa, oa);
    for (std::size_t l = 0; l < kSimdWidth; ++l) sv[l] = oa[l];
  }
  const v4d wv = v4_select(live, -sv, zeros);
  accx += dxv * wv;
  accy += dyv * wv;
}

__attribute__((always_inline)) inline Vec2 dense_vector_body(
    const PairScalingTable& table, const DenseRow& row) {
  const std::size_t base = table.pair_base(row.type_i);
  const double* tk = table.k_data();
  const double* tr = table.r_data();
  const double* tsg = table.sigma_data();
  const double* ttu = table.tau_data();
  const ForceLawKind kind = table.kind();
  const bool gauss = kind == ForceLawKind::kDoubleGaussian;
  const v4d xiv = {row.xi, row.xi, row.xi, row.xi};
  const v4d yiv = {row.yi, row.yi, row.yi, row.yi};
  const v4d cutv = {row.cutoff_sq, row.cutoff_sq, row.cutoff_sq,
                    row.cutoff_sq};
  v4d accx = {0.0, 0.0, 0.0, 0.0};
  v4d accy = {0.0, 0.0, 0.0, 0.0};
  // σ/τ lanes are dead under F¹ (the law never reads them), so their
  // gather is skipped; any value yields the same bits.
  v4d spv = {1.0, 1.0, 1.0, 1.0};
  v4d tpv = {1.0, 1.0, 1.0, 1.0};
  std::size_t b = 0;
  for (; b + kSimdWidth <= row.count; b += kSimdWidth) {
    const v4d cxv = {row.cand_x[b], row.cand_x[b + 1], row.cand_x[b + 2],
                     row.cand_x[b + 3]};
    const v4d cyv = {row.cand_y[b], row.cand_y[b + 1], row.cand_y[b + 2],
                     row.cand_y[b + 3]};
    v4d kpv;
    v4d rpv;
    for (std::size_t l = 0; l < kSimdWidth; ++l) {
      const std::size_t e = base + row.cand_type[b + l];
      kpv[l] = tk[e];
      rpv[l] = tr[e];
      if (gauss) {
        spv[l] = tsg[e];
        tpv[l] = ttu[e];
      }
    }
    vector_block(kind, xiv, yiv, cutv, kLaneMask[kSimdWidth], cxv, cyv, kpv,
                 rpv, spv, tpv, accx, accy);
  }
  if (b < row.count) {
    const std::size_t m = row.count - b;
    v4d cxv;
    v4d cyv;
    v4d kpv;
    v4d rpv;
    for (std::size_t l = 0; l < kSimdWidth; ++l) {
      const std::size_t c = b + (l < m ? l : m - 1);  // pad with last valid
      cxv[l] = row.cand_x[c];
      cyv[l] = row.cand_y[c];
      const std::size_t e = base + row.cand_type[c];
      kpv[l] = tk[e];
      rpv[l] = tr[e];
      if (gauss) {
        spv[l] = tsg[e];
        tpv[l] = ttu[e];
      }
    }
    vector_block(kind, xiv, yiv, cutv, kLaneMask[m], cxv, cyv, kpv, rpv, spv,
                 tpv, accx, accy);
  }
  return {((accx[0] + accx[1]) + accx[2]) + accx[3],
          ((accy[0] + accy[1]) + accy[2]) + accy[3]};
}

__attribute__((always_inline)) inline Vec2 indexed_vector_body(
    const PairScalingTable& table, const IndexedRow& row) {
  const std::size_t base = table.pair_base(row.type_i);
  const double* tk = table.k_data();
  const double* tr = table.r_data();
  const double* tsg = table.sigma_data();
  const double* ttu = table.tau_data();
  const ForceLawKind kind = table.kind();
  const bool gauss = kind == ForceLawKind::kDoubleGaussian;
  const v4d xiv = {row.xi, row.xi, row.xi, row.xi};
  const v4d yiv = {row.yi, row.yi, row.yi, row.yi};
  const v4d cutv = {row.cutoff_sq, row.cutoff_sq, row.cutoff_sq,
                    row.cutoff_sq};
  v4d accx = {0.0, 0.0, 0.0, 0.0};
  v4d accy = {0.0, 0.0, 0.0, 0.0};
  v4d spv = {1.0, 1.0, 1.0, 1.0};
  v4d tpv = {1.0, 1.0, 1.0, 1.0};
  for (std::size_t b = 0; b < row.count; b += kSimdWidth) {
    const std::size_t m = std::min(kSimdWidth, row.count - b);
    v4d cxv;
    v4d cyv;
    v4d kpv;
    v4d rpv;
    for (std::size_t l = 0; l < kSimdWidth; ++l) {
      const std::size_t c = b + (l < m ? l : m - 1);  // pad with last valid
      const std::size_t j = row.candidates[c];
      cxv[l] = row.xs[j];
      cyv[l] = row.ys[j];
      const std::size_t e = base + row.types[j];
      kpv[l] = tk[e];
      rpv[l] = tr[e];
      if (gauss) {
        spv[l] = tsg[e];
        tpv[l] = ttu[e];
      }
    }
    vector_block(kind, xiv, yiv, cutv, kLaneMask[m], cxv, cyv, kpv, rpv, spv,
                 tpv, accx, accy);
  }
  return {((accx[0] + accx[1]) + accx[2]) + accx[3],
          ((accy[0] + accy[1]) + accy[2]) + accy[3]};
}

// The force-inlined row functors for the chunk loops: inlining operator()
// (rather than a lambda, whose operator() would not force-inline) is what
// guarantees the row math code-generates under the wrapper's target ISA.
struct DenseVectorRow {
  __attribute__((always_inline)) Vec2 operator()(const PairScalingTable& table,
                                                 const DenseRow& row) const {
    return dense_vector_body(table, row);
  }
};

struct IndexedVectorRow {
  __attribute__((always_inline)) Vec2 operator()(const PairScalingTable& table,
                                                 const IndexedRow& row) const {
    return indexed_vector_body(table, row);
  }
};

Vec2 dense_vector_generic(const PairScalingTable& table, const DenseRow& row) {
  return dense_vector_body(table, row);
}

Vec2 packed_vector_generic(const PairScalingTable& table,
                           const PackedRow& row) {
  return dense_vector_body(table, as_dense(row));
}

Vec2 indexed_vector_generic(const PairScalingTable& table,
                            const IndexedRow& row) {
  return indexed_vector_body(table, row);
}

void dense_chunk_generic(const PairScalingTable& table,
                         const DenseChunk& chunk) {
  dense_chunk_loop(table, chunk, DenseVectorRow{});
}

void indexed_chunk_generic(const PairScalingTable& table,
                           const IndexedChunk& chunk) {
  indexed_chunk_loop(table, chunk, IndexedVectorRow{});
}

// Per-element norms in 4-lane batches, summed strictly in index order —
// the same mul/add/sqrt per element as the scalar loop, so the same bits.
__attribute__((always_inline)) inline double drift_norm_body(const Vec2* drift,
                                                             std::size_t n) {
  double total = 0.0;
  std::size_t i = 0;
  for (; i + kSimdWidth <= n; i += kSimdWidth) {
    v4d nv;
    for (std::size_t l = 0; l < kSimdWidth; ++l) {
      const Vec2 d = drift[i + l];
      nv[l] = d.x * d.x + d.y * d.y;
    }
    for (std::size_t l = 0; l < kSimdWidth; ++l) nv[l] = std::sqrt(nv[l]);
    for (std::size_t l = 0; l < kSimdWidth; ++l) total += nv[l];
  }
  for (; i < n; ++i) {
    total += std::sqrt(drift[i].x * drift[i].x + drift[i].y * drift[i].y);
  }
  return total;
}

double drift_norm_generic(const Vec2* drift, std::size_t n) {
  return drift_norm_body(drift, n);
}

#if SOPS_KERNEL_AVX2

__attribute__((target("avx2"))) Vec2 dense_vector_avx2(
    const PairScalingTable& table, const DenseRow& row) {
  return dense_vector_body(table, row);
}

__attribute__((target("avx2"))) Vec2 packed_vector_avx2(
    const PairScalingTable& table, const PackedRow& row) {
  return dense_vector_body(table, as_dense(row));
}

__attribute__((target("avx2"))) Vec2 indexed_vector_avx2(
    const PairScalingTable& table, const IndexedRow& row) {
  // Per-lane load/insert chains, not hardware gathers: vgatherdpd was
  // measured ~35% slower on this path's short rows (the gather micro-op
  // sequence loses to four scalar loads the OoO core overlaps freely).
  return indexed_vector_body(table, row);
}

__attribute__((target("avx2"))) void dense_chunk_avx2(
    const PairScalingTable& table, const DenseChunk& chunk) {
  dense_chunk_loop(table, chunk, DenseVectorRow{});
}

__attribute__((target("avx2"))) void indexed_chunk_avx2(
    const PairScalingTable& table, const IndexedChunk& chunk) {
  indexed_chunk_loop(table, chunk, IndexedVectorRow{});
}

__attribute__((target("avx2"))) double drift_norm_avx2(const Vec2* drift,
                                                       std::size_t n) {
  return drift_norm_body(drift, n);
}

// Left-pack tables indexed by a 4-bit survivor mask. kCompressD[m] is a
// permutevar8x32 control moving the set lanes' double halves (32-bit lanes
// 2l, 2l+1) to the front; kCompressB[m] does the same for the four 32-bit
// type tags via a byte shuffle. Slack lanes past the survivors hold lane 0
// — the store clobbers them, which is why FilterRow demands
// count + kSimdWidth of output room.
alignas(32) constexpr std::uint32_t kCompressD[16][8] = {
    {0, 0, 0, 0, 0, 0, 0, 0},  // 0b0000
    {0, 1, 0, 0, 0, 0, 0, 0},  // 0b0001
    {2, 3, 0, 0, 0, 0, 0, 0},  // 0b0010
    {0, 1, 2, 3, 0, 0, 0, 0},  // 0b0011
    {4, 5, 0, 0, 0, 0, 0, 0},  // 0b0100
    {0, 1, 4, 5, 0, 0, 0, 0},  // 0b0101
    {2, 3, 4, 5, 0, 0, 0, 0},  // 0b0110
    {0, 1, 2, 3, 4, 5, 0, 0},  // 0b0111
    {6, 7, 0, 0, 0, 0, 0, 0},  // 0b1000
    {0, 1, 6, 7, 0, 0, 0, 0},  // 0b1001
    {2, 3, 6, 7, 0, 0, 0, 0},  // 0b1010
    {0, 1, 2, 3, 6, 7, 0, 0},  // 0b1011
    {4, 5, 6, 7, 0, 0, 0, 0},  // 0b1100
    {0, 1, 4, 5, 6, 7, 0, 0},  // 0b1101
    {2, 3, 4, 5, 6, 7, 0, 0},  // 0b1110
    {0, 1, 2, 3, 4, 5, 6, 7},  // 0b1111
};
alignas(16) constexpr std::uint8_t kCompressB[16][16] = {
    {0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},          // 0b0000
    {0, 1, 2, 3, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},          // 0b0001
    {4, 5, 6, 7, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},          // 0b0010
    {0, 1, 2, 3, 4, 5, 6, 7, 0, 0, 0, 0, 0, 0, 0, 0},          // 0b0011
    {8, 9, 10, 11, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},        // 0b0100
    {0, 1, 2, 3, 8, 9, 10, 11, 0, 0, 0, 0, 0, 0, 0, 0},        // 0b0101
    {4, 5, 6, 7, 8, 9, 10, 11, 0, 0, 0, 0, 0, 0, 0, 0},        // 0b0110
    {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 0, 0, 0, 0},        // 0b0111
    {12, 13, 14, 15, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},      // 0b1000
    {0, 1, 2, 3, 12, 13, 14, 15, 0, 0, 0, 0, 0, 0, 0, 0},      // 0b1001
    {4, 5, 6, 7, 12, 13, 14, 15, 0, 0, 0, 0, 0, 0, 0, 0},      // 0b1010
    {0, 1, 2, 3, 4, 5, 6, 7, 12, 13, 14, 15, 0, 0, 0, 0},      // 0b1011
    {8, 9, 10, 11, 12, 13, 14, 15, 0, 0, 0, 0, 0, 0, 0, 0},    // 0b1100
    {0, 1, 2, 3, 8, 9, 10, 11, 12, 13, 14, 15, 0, 0, 0, 0},    // 0b1101
    {4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 0, 0, 0, 0},    // 0b1110
    {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15},    // 0b1111
};

// _CMP_LT_OQ and _CMP_NEQ_UQ reproduce C++ `<` / `!=` NaN semantics
// exactly, and sub/mul/add never contract (no -mfma anywhere in the
// build), so the movemask equals the scalar predicate bit-for-bit and the
// compressed stores emit filter_scalar's survivor sequence.
__attribute__((target("avx2"))) std::size_t filter_avx2(const FilterRow& row) {
  const __m256d xiv = _mm256_set1_pd(row.xi);
  const __m256d yiv = _mm256_set1_pd(row.yi);
  const __m256d cutv = _mm256_set1_pd(row.cutoff_sq);
  const __m256d zero = _mm256_setzero_pd();
  // All-lanes-on masked gathers: the unmasked intrinsics route through
  // _mm256_undefined_pd(), which GCC flags under -Wmaybe-uninitialized.
  const __m256d gather_all = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
  std::size_t kept = 0;
  std::size_t c = 0;
  for (; c + kSimdWidth <= row.count; c += kSimdWidth) {
    const __m128i idx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(row.candidates + c));
    const __m256d cxv =
        _mm256_mask_i32gather_pd(zero, row.xs, idx, gather_all, 8);
    const __m256d cyv =
        _mm256_mask_i32gather_pd(zero, row.ys, idx, gather_all, 8);
    const __m256d dxv = _mm256_sub_pd(xiv, cxv);
    const __m256d dyv = _mm256_sub_pd(yiv, cyv);
    const __m256d d2v =
        _mm256_add_pd(_mm256_mul_pd(dxv, dxv), _mm256_mul_pd(dyv, dyv));
    const __m256d live = _mm256_and_pd(_mm256_cmp_pd(d2v, cutv, _CMP_LT_OQ),
                                       _mm256_cmp_pd(d2v, zero, _CMP_NEQ_UQ));
    const int m = _mm256_movemask_pd(live);
    const __m256i perm =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(kCompressD[m]));
    _mm256_storeu_pd(row.out_x + kept,
                     _mm256_castsi256_pd(_mm256_permutevar8x32_epi32(
                         _mm256_castpd_si256(cxv), perm)));
    _mm256_storeu_pd(row.out_y + kept,
                     _mm256_castsi256_pd(_mm256_permutevar8x32_epi32(
                         _mm256_castpd_si256(cyv), perm)));
    const __m128i tags = _mm_mask_i32gather_epi32(
        _mm_setzero_si128(), reinterpret_cast<const int*>(row.types), idx,
        _mm_set1_epi32(-1), 4);
    const __m128i ctrl =
        _mm_load_si128(reinterpret_cast<const __m128i*>(kCompressB[m]));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(row.out_type + kept),
                     _mm_shuffle_epi8(tags, ctrl));
    kept += static_cast<std::size_t>(std::popcount(static_cast<unsigned>(m)));
  }
  for (; c < row.count; ++c) {
    const std::size_t j = row.candidates[c];
    const double cx = row.xs[j];
    const double cy = row.ys[j];
    const double dx = row.xi - cx;
    const double dy = row.yi - cy;
    const double d2 = dx * dx + dy * dy;
    row.out_x[kept] = cx;
    row.out_y[kept] = cy;
    row.out_type[kept] = row.types[j];
    kept += (d2 < row.cutoff_sq && d2 != 0.0) ? 1 : 0;
  }
  return kept;
}

#endif  // SOPS_KERNEL_AVX2

#endif  // SOPS_HAVE_VECTOR_EXT

}  // namespace

const DriftKernels& scalar_drift_kernels() noexcept {
  static const DriftKernels kScalar{
      dense_scalar,       packed_scalar,        filter_scalar,
      indexed_scalar,     dense_chunk_scalar,   indexed_chunk_scalar,
      drift_norm_scalar};
  return kScalar;
}

const DriftKernels& select_drift_kernels() noexcept {
#if defined(SOPS_HAVE_VECTOR_EXT)
  // The generic tier keeps the scalar filter: compress has no portable
  // vector form, and the selection being exact arithmetic means there is no
  // bitwise contract to re-prove — only the AVX2 tier swaps in intrinsics.
  static const DriftKernels kGeneric{
      dense_vector_generic,   packed_vector_generic, filter_scalar,
      indexed_vector_generic, dense_chunk_generic,   indexed_chunk_generic,
      drift_norm_generic};
  if (!support::simd_enabled()) return scalar_drift_kernels();
#if SOPS_KERNEL_AVX2
  static const DriftKernels kAvx2{
      dense_vector_avx2,   packed_vector_avx2, filter_avx2,
      indexed_vector_avx2, dense_chunk_avx2,   indexed_chunk_avx2,
      drift_norm_avx2};
  if (support::cpu_dispatch_avx2()) return kAvx2;
#endif
  return kGeneric;
#else
  return scalar_drift_kernels();
#endif
}

}  // namespace sops::sim
