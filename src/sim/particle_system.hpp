// Particle state: positions in R² plus the fixed per-particle type.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geom/vec2.hpp"
#include "support/error.hpp"

namespace sops::sim {

/// Type index of a particle (α ∈ {0, …, l−1}).
using TypeId = std::uint32_t;

/// A particle collective: n positions and n fixed types.
///
/// Types are assigned once at construction and never change during a run
/// (paper §5.1); positions evolve under the integrator.
struct ParticleSystem {
  std::vector<geom::Vec2> positions;
  std::vector<TypeId> types;

  ParticleSystem() = default;
  ParticleSystem(std::vector<geom::Vec2> pos, std::vector<TypeId> type_ids)
      : positions(std::move(pos)), types(std::move(type_ids)) {
    support::expect(positions.size() == types.size(),
                    "ParticleSystem: positions/types size mismatch");
  }

  /// Number of particles n.
  [[nodiscard]] std::size_t size() const noexcept { return positions.size(); }

  /// Number of distinct type ids present must be < `type_count`; verifies
  /// every particle's type is a valid index for an l-type interaction model.
  [[nodiscard]] bool types_within(std::size_t type_count) const noexcept {
    for (const TypeId t : types) {
      if (t >= type_count) return false;
    }
    return true;
  }
};

/// Assigns types 0..l−1 to n particles as evenly as possible, in blocks
/// (particles 0..n/l−1 get type 0, and so on; remainders go to the low
/// types). Deterministic, so experiments are reproducible by config alone.
[[nodiscard]] std::vector<TypeId> evenly_distributed_types(std::size_t n,
                                                           std::size_t l);

/// Number of particles of each type, indexed by type id.
[[nodiscard]] std::vector<std::size_t> type_histogram(
    std::span<const TypeId> types, std::size_t type_count);

}  // namespace sops::sim
