// Particle state: positions in R² plus the fixed per-particle type.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geom/position_lanes.hpp"
#include "geom/vec2.hpp"
#include "support/error.hpp"

namespace sops::sim {

/// Type index of a particle (α ∈ {0, …, l−1}).
using TypeId = std::uint32_t;

/// A particle collective: n positions and n fixed types.
///
/// Types are assigned once at construction and never change during a run
/// (paper §5.1); positions evolve under the integrator.
///
/// Positions are stored structure-of-arrays — two parallel double lanes —
/// so the pair kernels stream contiguous coordinates. Per-particle access
/// goes through position()/set_position()/translate(); whole-configuration
/// consumers take lanes() (the zero-copy SoA view) or positions_aos() (an
/// interleaved copy for Vec2-span APIs like the Delaunay tessellation).
struct ParticleSystem {
  std::vector<double> x;
  std::vector<double> y;
  std::vector<TypeId> types;

  ParticleSystem() = default;
  ParticleSystem(std::vector<geom::Vec2> pos, std::vector<TypeId> type_ids)
      : types(std::move(type_ids)) {
    support::expect(pos.size() == types.size(),
                    "ParticleSystem: positions/types size mismatch");
    geom::deinterleave(pos, x, y);
  }
  ParticleSystem(std::vector<double> xs, std::vector<double> ys,
                 std::vector<TypeId> type_ids)
      : x(std::move(xs)), y(std::move(ys)), types(std::move(type_ids)) {
    support::expect(x.size() == y.size() && x.size() == types.size(),
                    "ParticleSystem: lane/types size mismatch");
  }

  /// Number of particles n.
  [[nodiscard]] std::size_t size() const noexcept { return x.size(); }

  /// Position of particle i as a point.
  [[nodiscard]] geom::Vec2 position(std::size_t i) const noexcept {
    return {x[i], y[i]};
  }

  void set_position(std::size_t i, geom::Vec2 p) noexcept {
    x[i] = p.x;
    y[i] = p.y;
  }

  /// Moves particle i by `step` (component-wise, exactly as the former AoS
  /// `positions[i] += step` — integrator bits are unchanged).
  void translate(std::size_t i, geom::Vec2 step) noexcept {
    x[i] += step.x;
    y[i] += step.y;
  }

  /// Zero-copy SoA view of the current configuration.
  [[nodiscard]] geom::PositionLanes lanes() const noexcept {
    return {x, y};
  }

  /// Interleaved copy for APIs that consume spans of points.
  [[nodiscard]] std::vector<geom::Vec2> positions_aos() const {
    std::vector<geom::Vec2> out;
    geom::interleave(lanes(), out);
    return out;
  }

  /// Number of distinct type ids present must be < `type_count`; verifies
  /// every particle's type is a valid index for an l-type interaction model.
  [[nodiscard]] bool types_within(std::size_t type_count) const noexcept {
    for (const TypeId t : types) {
      if (t >= type_count) return false;
    }
    return true;
  }
};

/// Assigns types 0..l−1 to n particles as evenly as possible, in blocks
/// (particles 0..n/l−1 get type 0, and so on; remainders go to the low
/// types). Deterministic, so experiments are reproducible by config alone.
[[nodiscard]] std::vector<TypeId> evenly_distributed_types(std::size_t n,
                                                           std::size_t l);

/// Number of particles of each type, indexed by type id.
[[nodiscard]] std::vector<std::size_t> type_histogram(
    std::span<const TypeId> types, std::size_t type_count);

}  // namespace sops::sim
