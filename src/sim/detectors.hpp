// Stopping-condition detectors.
//
// The paper (§4.1, §6) stops on equilibrium — "for several time steps the
// sum of the L2 norm of the sum of all forces acting on each particle is
// below a specific threshold" — and separately observes runs that never
// equilibrate because they enter a periodic limit cycle. Both detectors are
// implemented here; the limit-cycle detector backs the §6 ablation bench.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "geom/vec2.hpp"

namespace sops::sim {

/// Declares equilibrium once the residual force statistic stays below
/// `threshold` for `hold_steps` consecutive steps.
class EquilibriumDetector {
 public:
  EquilibriumDetector(double threshold, std::size_t hold_steps);

  /// Feeds the residual Σ‖drift_i‖ of one step; returns true once
  /// equilibrium is declared (and stays true afterwards).
  bool update(double residual_norm) noexcept;

  /// True if equilibrium has been declared.
  [[nodiscard]] bool triggered() const noexcept { return triggered_; }

  /// Steps of consecutive sub-threshold residuals seen so far.
  [[nodiscard]] std::size_t streak() const noexcept { return streak_; }

  void reset() noexcept {
    streak_ = 0;
    triggered_ = false;
  }

 private:
  double threshold_;
  std::size_t hold_steps_;
  std::size_t streak_ = 0;
  bool triggered_ = false;
};

/// Detected cycle: the period (in fed snapshots) and the mean per-particle
/// position mismatch of the recurrence.
struct CycleMatch {
  std::size_t period = 0;
  double mean_error = 0.0;
};

/// Detects periodic recurrences of the configuration.
///
/// Keeps a sliding window of past snapshots (centroid-removed, so a drifting
/// cycle is still recognized) and reports a cycle when the current snapshot
/// matches one at lag ≥ `min_period` with mean per-particle error below
/// `tolerance`. Matching is index-aligned (no permutation search): within a
/// single run particle identity persists, so this is exact for true cycles.
class LimitCycleDetector {
 public:
  LimitCycleDetector(double tolerance, std::size_t min_period,
                     std::size_t window);

  /// Feeds a configuration snapshot; returns the best (smallest-period)
  /// match if the configuration recurred.
  std::optional<CycleMatch> update(std::span<const geom::Vec2> positions);

  void reset() noexcept { history_.clear(); }

 private:
  double tolerance_;
  std::size_t min_period_;
  std::size_t window_;
  std::deque<std::vector<geom::Vec2>> history_;  // newest at back
};

}  // namespace sops::sim
