// Structural and dynamical observables of particle configurations:
// the standard quantities used to characterize the regimes the paper
// describes qualitatively (regular grids, clusters, slow expansion).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "sim/particle_system.hpp"

namespace sops::sim {

/// Radial distribution function g(r) of a 2-D configuration.
///
/// Pairwise distances are histogrammed in `bins` shells of width
/// r_max/bins and normalized by the ideal-gas expectation (shell area ×
/// mean density over the disc of radius r_max around each particle), so
/// g → 1 for uncorrelated positions, g ≈ 0 inside a repulsive core, and
/// peaks mark preferred spacings (lattice/paracrystalline order).
struct RadialDistribution {
  std::vector<double> r;  ///< shell centers
  std::vector<double> g;  ///< g(r) values
};

[[nodiscard]] RadialDistribution radial_distribution(
    std::span<const geom::Vec2> points, double r_max, std::size_t bins = 50);

/// Height of the first g(r) peak — a scalar crystallinity proxy.
[[nodiscard]] double first_peak_height(const RadialDistribution& rdf);

/// Mean squared displacement per recorded frame, relative to frame 0,
/// averaged over particles. Identity-preserving frames required (raw
/// trajectory order, not shape-space output).
[[nodiscard]] std::vector<double> mean_squared_displacement(
    std::span<const std::vector<geom::Vec2>> frames);

/// Radius of gyration: RMS distance from the centroid.
[[nodiscard]] double radius_of_gyration(std::span<const geom::Vec2> points);

/// Fraction of particles whose nearest neighbor has a different type
/// (≈ inter-type contact fraction; 0 when fully sorted). For a balanced
/// random mixture of l types the expectation is (l−1)/l · (n/(n−1))-ish.
[[nodiscard]] double cross_type_neighbor_fraction(
    std::span<const geom::Vec2> points, std::span<const TypeId> types);

/// Mean distance from the joint centroid, per type. Types with no members
/// report 0. Used to detect enclosed/layered arrangements (Fig. 12).
[[nodiscard]] std::vector<double> mean_radius_by_type(
    std::span<const geom::Vec2> points, std::span<const TypeId> types,
    std::size_t type_count);

}  // namespace sops::sim
