#include "cluster/kmeans.hpp"

#include <algorithm>
#include <limits>

#include "rng/samplers.hpp"
#include "support/error.hpp"

namespace sops::cluster {
namespace {

// Index of the centroid nearest to p.
std::size_t nearest_centroid(geom::Vec2 p, std::span<const geom::Vec2> centroids) {
  std::size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < centroids.size(); ++c) {
    const double d = geom::dist_sq(p, centroids[c]);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

KMeansResult kmeans_single(std::span<const geom::Vec2> points, std::size_t k,
                           rng::Xoshiro256& engine,
                           const KMeansOptions& options) {
  KMeansResult result;
  result.centroids = kmeans_plus_plus_seeds(points, k, engine);
  result.assignment.assign(points.size(), 0);

  std::vector<geom::Vec2> sums(k);
  std::vector<std::size_t> counts(k);

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    bool changed = false;
    for (std::size_t i = 0; i < points.size(); ++i) {
      const std::size_t c = nearest_centroid(points[i], result.centroids);
      if (c != result.assignment[i]) {
        result.assignment[i] = c;
        changed = true;
      }
    }
    if (!changed && iter > 0) {
      result.converged = true;
      break;
    }

    std::fill(sums.begin(), sums.end(), geom::Vec2{});
    std::fill(counts.begin(), counts.end(), std::size_t{0});
    for (std::size_t i = 0; i < points.size(); ++i) {
      sums[result.assignment[i]] += points[i];
      ++counts[result.assignment[i]];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] > 0) {
        result.centroids[c] = sums[c] / static_cast<double>(counts[c]);
      } else {
        // Reseed an empty cluster at the point farthest from its centroid:
        // guarantees every centroid owns at least one point next round.
        std::size_t worst_point = 0;
        double worst_d = -1.0;
        for (std::size_t i = 0; i < points.size(); ++i) {
          const double d =
              geom::dist_sq(points[i], result.centroids[result.assignment[i]]);
          if (d > worst_d) {
            worst_d = d;
            worst_point = i;
          }
        }
        result.centroids[c] = points[worst_point];
      }
    }
  }

  result.inertia = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    result.inertia +=
        geom::dist_sq(points[i], result.centroids[result.assignment[i]]);
  }
  return result;
}

}  // namespace

std::vector<geom::Vec2> kmeans_plus_plus_seeds(std::span<const geom::Vec2> points,
                                               std::size_t k,
                                               rng::Xoshiro256& engine) {
  support::expect(k >= 1 && k <= points.size(),
                  "kmeans_plus_plus_seeds: need 1 <= k <= point count");
  std::vector<geom::Vec2> seeds;
  seeds.reserve(k);
  seeds.push_back(points[rng::uniform_index(engine, points.size())]);

  std::vector<double> dist_sq(points.size());
  while (seeds.size() < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (const geom::Vec2 s : seeds) best = std::min(best, geom::dist_sq(points[i], s));
      dist_sq[i] = best;
      total += best;
    }
    if (total == 0.0) {
      // All points coincide with existing seeds (duplicates); any point works.
      seeds.push_back(points[rng::uniform_index(engine, points.size())]);
      continue;
    }
    double target = rng::uniform01(engine) * total;
    std::size_t chosen = points.size() - 1;
    for (std::size_t i = 0; i < points.size(); ++i) {
      target -= dist_sq[i];
      if (target <= 0.0) {
        chosen = i;
        break;
      }
    }
    seeds.push_back(points[chosen]);
  }
  return seeds;
}

KMeansResult kmeans(std::span<const geom::Vec2> points, std::size_t k,
                    rng::Xoshiro256& engine, const KMeansOptions& options) {
  support::expect(k >= 1 && k <= points.size(),
                  "kmeans: need 1 <= k <= point count");
  support::expect(options.restarts >= 1, "kmeans: restarts must be >= 1");
  KMeansResult best;
  double best_inertia = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < options.restarts; ++r) {
    KMeansResult candidate = kmeans_single(points, k, engine, options);
    if (candidate.inertia < best_inertia) {
      best_inertia = candidate.inertia;
      best = std::move(candidate);
    }
  }
  return best;
}

}  // namespace sops::cluster
