// Lloyd's k-means with k-means++ seeding over 2-D points.
//
// Backs the paper's §5.3.1 approximation: for collectives with n > 60
// particles, per-type k-means centroids become the coarse "mean observer"
// variables Ŵ, reducing the dimensionality of the multi-information
// estimate.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "geom/vec2.hpp"
#include "rng/engine.hpp"

namespace sops::cluster {

/// Result of a k-means run.
struct KMeansResult {
  std::vector<geom::Vec2> centroids;     ///< k cluster centers
  std::vector<std::size_t> assignment;   ///< per-point cluster index
  double inertia = 0.0;                  ///< Σ_i ‖p_i − c_{a(i)}‖²
  std::size_t iterations = 0;            ///< Lloyd iterations performed
  bool converged = false;                ///< true if assignments stabilized
};

/// k-means options.
struct KMeansOptions {
  std::size_t max_iterations = 100;
  /// Stop when no assignment changes (exact) — tolerance-free because the
  /// downstream estimator needs deterministic centroids, not speed.
  std::size_t restarts = 1;  ///< best-of-N inertia over independent seedings
};

/// Clusters `points` into k groups. Requires 1 ≤ k ≤ points.size().
/// Deterministic given the engine state. Empty clusters are reseeded to the
/// point currently farthest from its centroid.
[[nodiscard]] KMeansResult kmeans(std::span<const geom::Vec2> points,
                                  std::size_t k, rng::Xoshiro256& engine,
                                  const KMeansOptions& options = {});

/// k-means++ seeding only (exposed for tests): k distinct initial centers,
/// each chosen with probability proportional to squared distance from the
/// nearest already-chosen center.
[[nodiscard]] std::vector<geom::Vec2> kmeans_plus_plus_seeds(
    std::span<const geom::Vec2> points, std::size_t k, rng::Xoshiro256& engine);

}  // namespace sops::cluster
