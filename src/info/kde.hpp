// Kernel-density multi-information — the second §5.3 comparison baseline.
//
// Densities are estimated with a Gaussian product kernel at every sample
// (leave-one-out), and the multi-information is the resubstitution average
//
//   Î = (1/m) Σ_s log₂ [ p̂(w_s) / Π_i p̂_i(w_s,i) ].
//
// The paper found this approach "multiple orders of magnitudes slower" with
// larger variance in high dimensions than KSG; the ablation bench
// demonstrates both effects. Complexity O(m² · D) with large constants.
#pragma once

#include <cstddef>
#include <span>

#include "info/sample_matrix.hpp"

namespace sops::support {
class Executor;
}  // namespace sops::support

namespace sops::info {

/// KDE estimator options.
struct KdeOptions {
  /// Kernel bandwidth multiplier on the Silverman-style per-block scale
  /// h = scale · σ̂ · m^{−1/(d+4)}.
  double bandwidth_scale = 1.0;
  std::size_t threads = 0;
  /// When set, density evaluations dispatch their sample chunks on this
  /// executor (a persistent pool the caller reuses across calls) and
  /// `threads` is ignored — mirroring KsgOptions::executor. Never affects
  /// the estimate.
  support::Executor* executor = nullptr;
};

/// Leave-one-out log₂ density estimate of block coordinates at each sample;
/// exposed for tests.
[[nodiscard]] std::vector<double> kde_log2_density(const SampleMatrix& samples,
                                                   const Block& block,
                                                   const KdeOptions& options = {});

/// KDE multi-information (bits) between the observer blocks.
[[nodiscard]] double multi_information_kde(const SampleMatrix& samples,
                                           std::span<const Block> blocks,
                                           const KdeOptions& options = {});

}  // namespace sops::info
