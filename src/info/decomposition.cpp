#include "info/decomposition.hpp"

#include <algorithm>

namespace sops::info {
namespace {

// Gathers the coordinates of a group of fine blocks into contiguous columns
// of a new SampleMatrix, returning also the fine blocks re-based onto the
// new layout. This keeps every estimator input in the canonical
// "contiguous blocks covering all dims" form.
struct GatheredGroup {
  SampleMatrix samples;
  std::vector<Block> blocks;
};

GatheredGroup gather(const SampleMatrix& source, std::span<const Block> blocks,
                     std::span<const std::size_t> member_indices) {
  std::size_t total_dim = 0;
  for (const std::size_t b : member_indices) total_dim += blocks[b].dim;

  GatheredGroup out;
  out.samples = SampleMatrix(source.count(), total_dim);
  out.blocks.reserve(member_indices.size());

  std::size_t cursor = 0;
  for (const std::size_t b : member_indices) {
    const Block& block = blocks[b];
    for (std::size_t s = 0; s < source.count(); ++s) {
      for (std::size_t d = 0; d < block.dim; ++d) {
        out.samples(s, cursor + d) = source(s, block.offset + d);
      }
    }
    out.blocks.push_back({cursor, block.dim});
    cursor += block.dim;
  }
  return out;
}

}  // namespace

void validate_grouping(const ObserverGrouping& grouping,
                       std::size_t block_count) {
  support::expect(!grouping.empty(), "validate_grouping: empty grouping");
  std::vector<char> seen(block_count, 0);
  for (const auto& group : grouping) {
    support::expect(!group.empty(), "validate_grouping: empty group");
    for (const std::size_t b : group) {
      support::expect(b < block_count, "validate_grouping: block index range");
      support::expect(!seen[b], "validate_grouping: block in multiple groups");
      seen[b] = 1;
    }
  }
  support::expect(
      std::all_of(seen.begin(), seen.end(), [](char c) { return c != 0; }),
      "validate_grouping: not all blocks grouped");
}

Decomposition decompose_multi_information(const SampleMatrix& samples,
                                          std::span<const Block> blocks,
                                          const ObserverGrouping& grouping,
                                          const KsgOptions& options) {
  validate_blocks(blocks, samples.dim());
  validate_grouping(grouping, blocks.size());

  Decomposition result;
  result.total = multi_information_ksg(samples, blocks, options);

  // The gathered/merged matrices below are call-local, so a caller-supplied
  // per-frame cache (bound to `samples`) must not be handed to them.
  KsgOptions local_options = options;
  local_options.cache = nullptr;

  // Between-groups: one merged block per group. The KSG metric needs
  // contiguous blocks, so gather all groups into a fresh layout.
  if (grouping.size() >= 2) {
    std::vector<Block> merged_blocks;
    SampleMatrix merged(samples.count(), samples.dim());
    std::size_t cursor = 0;
    for (const auto& group : grouping) {
      const GatheredGroup gathered = gather(samples, blocks, group);
      for (std::size_t s = 0; s < samples.count(); ++s) {
        for (std::size_t d = 0; d < gathered.samples.dim(); ++d) {
          merged(s, cursor + d) = gathered.samples(s, d);
        }
      }
      merged_blocks.push_back({cursor, gathered.samples.dim()});
      cursor += gathered.samples.dim();
    }
    result.between_groups =
        multi_information_ksg(merged, merged_blocks, local_options);
  }

  // Within-group terms.
  result.within_group.reserve(grouping.size());
  for (const auto& group : grouping) {
    if (group.size() < 2) {
      result.within_group.push_back(0.0);
      continue;
    }
    const GatheredGroup gathered = gather(samples, blocks, group);
    result.within_group.push_back(
        multi_information_ksg(gathered.samples, gathered.blocks,
                              local_options));
  }
  return result;
}

ObserverGrouping group_blocks_by_type(std::span<const std::uint32_t> types,
                                      std::size_t type_count) {
  support::expect(type_count > 0, "group_blocks_by_type: no types");
  ObserverGrouping grouping(type_count);
  for (std::size_t i = 0; i < types.size(); ++i) {
    support::expect(types[i] < type_count,
                    "group_blocks_by_type: type id out of range");
    grouping[types[i]].push_back(i);
  }
  // Drop types with no particles (keeps the partition property).
  grouping.erase(std::remove_if(grouping.begin(), grouping.end(),
                                [](const auto& g) { return g.empty(); }),
                 grouping.end());
  return grouping;
}

}  // namespace sops::info
