// Digamma function ψ(x) = d/dx ln Γ(x), the workhorse of the KSG estimator.
#pragma once

namespace sops::info {

/// ψ(x) for x > 0, via upward recurrence to x ≥ 6 followed by the standard
/// asymptotic series. Absolute error < 1e-12 on x ∈ [1e-3, 1e6].
[[nodiscard]] double digamma(double x);

/// ψ(n) for positive integers via ψ(1) = −γ and ψ(n+1) = ψ(n) + 1/n;
/// exact to double rounding and cheaper than the real-argument path for the
/// small n the estimators use. Falls back to digamma(n) for large n.
[[nodiscard]] double digamma_int(unsigned long long n);

}  // namespace sops::info
