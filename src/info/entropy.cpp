#include "info/entropy.hpp"

#include <cmath>
#include <numbers>
#include <vector>

#include "info/digamma.hpp"
#include "info/neighbor_cache.hpp"
#include "support/parallel_for.hpp"

namespace sops::info {
namespace {

constexpr double kLog2E = std::numbers::log2e;

// k-th smallest Euclidean distance (over the block coordinates) from sample
// s to the other samples.
double kth_block_distance(const SampleMatrix& samples, const Block& block,
                          std::size_t s, std::size_t k,
                          std::vector<double>& scratch) {
  const std::size_t m = samples.count();
  scratch.clear();
  scratch.reserve(m - 1);
  for (std::size_t j = 0; j < m; ++j) {
    if (j == s) continue;
    scratch.push_back(block_dist_sq(samples, s, j, block));
  }
  std::nth_element(scratch.begin(),
                   scratch.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   scratch.end());
  return std::sqrt(scratch[k - 1]);
}

// The one implementation behind both dispatch forms: `executor` when the
// caller lends one, a transient fork/join of `threads` workers otherwise.
double entropy_kl_block_impl(const SampleMatrix& samples, const Block& block,
                             std::size_t k, support::Executor* executor,
                             std::size_t threads,
                             FrameNeighborCache* cache = nullptr) {
  const std::size_t m = samples.count();
  support::expect(k >= 1 && m >= k + 1,
                  "entropy_kl_block: need at least k+1 samples");
  support::expect(block.offset + block.dim <= samples.dim(),
                  "entropy_kl_block: block out of range");

  // Cached-tree path: resolve the subspace tree serially (single-writer
  // contract) before the parallel query phase below reads it. The k-th of
  // the square roots equals the square root of the k-th squared distance
  // (sqrt is monotone and correctly rounded), so the cached eps matches the
  // exhaustive kth_block_distance bit for bit.
  const FrameNeighborCache::SubspaceTree* tree = nullptr;
  if (cache != nullptr) {
    support::expect(&cache->samples() == &samples,
                    "entropy_kl_block: cache bound to another matrix");
    tree = &cache->tree_for({&block, 1});
  }

  std::vector<double> log_eps(m, 0.0);
  const auto chunk = [&](std::size_t begin, std::size_t end) {
    std::vector<double> scratch;
    for (std::size_t s = begin; s < end; ++s) {
      const double eps =
          tree != nullptr
              ? std::sqrt(tree->tree.kth_block_dist_sq(tree->query(s), k,
                                                       tree->metric, s))
              : kth_block_distance(samples, block, s, k, scratch);
      // Coincident samples yield ε = 0; contribute a strongly negative
      // but finite term so degenerate ensembles do not produce NaN.
      log_eps[s] = eps > 0.0 ? std::log2(eps) : -52.0;
    }
  };
  if (executor != nullptr) {
    support::parallel_for_chunked(*executor, 0, m, chunk);
  } else {
    support::parallel_for_chunked(0, m, chunk, threads);
  }

  double sum_log_eps = 0.0;
  for (const double v : log_eps) sum_log_eps += v;

  const double d = static_cast<double>(block.dim);
  return kLog2E * (digamma_int(m) - digamma_int(k)) +
         log2_unit_ball_volume(block.dim) +
         d / static_cast<double>(m) * sum_log_eps;
}

}  // namespace

double log2_unit_ball_volume(std::size_t dim) {
  // V_D = π^{D/2} / Γ(D/2 + 1).
  const double d = static_cast<double>(dim);
  return (d / 2.0) * std::log2(std::numbers::pi) -
         kLog2E * std::lgamma(d / 2.0 + 1.0);
}

double entropy_kl_block(const SampleMatrix& samples, const Block& block,
                        std::size_t k, std::size_t threads) {
  return entropy_kl_block_impl(samples, block, k, nullptr, threads);
}

double entropy_kl_block(const SampleMatrix& samples, const Block& block,
                        std::size_t k, support::Executor& executor) {
  return entropy_kl_block_impl(samples, block, k, &executor, 1);
}

double entropy_kl(const SampleMatrix& samples, std::size_t k,
                  std::size_t threads) {
  return entropy_kl_block(samples, Block{0, samples.dim()}, k, threads);
}

double entropy_kl(const SampleMatrix& samples, std::size_t k,
                  support::Executor& executor) {
  return entropy_kl_block(samples, Block{0, samples.dim()}, k, executor);
}

double entropy_kl_block(const SampleMatrix& samples, const Block& block,
                        std::size_t k, support::Executor& executor,
                        FrameNeighborCache* cache) {
  return entropy_kl_block_impl(samples, block, k, &executor, 1, cache);
}

double entropy_kl(const SampleMatrix& samples, std::size_t k,
                  support::Executor& executor, FrameNeighborCache* cache) {
  return entropy_kl_block(samples, Block{0, samples.dim()}, k, executor, cache);
}

namespace {

double multi_information_kl_impl(const SampleMatrix& samples,
                                 std::span<const Block> blocks, std::size_t k,
                                 support::Executor* executor,
                                 std::size_t threads) {
  validate_blocks(blocks, samples.dim());
  double marginal_sum = 0.0;
  for (const Block& block : blocks) {
    marginal_sum += entropy_kl_block_impl(samples, block, k, executor, threads);
  }
  return marginal_sum -
         entropy_kl_block_impl(samples, Block{0, samples.dim()}, k, executor,
                               threads);
}

}  // namespace

double multi_information_kl(const SampleMatrix& samples,
                            std::span<const Block> blocks, std::size_t k,
                            std::size_t threads) {
  return multi_information_kl_impl(samples, blocks, k, nullptr, threads);
}

double multi_information_kl(const SampleMatrix& samples,
                            std::span<const Block> blocks, std::size_t k,
                            support::Executor& executor) {
  return multi_information_kl_impl(samples, blocks, k, &executor, 1);
}

double gaussian_entropy_bits(std::size_t dim, double sigma) {
  const double d = static_cast<double>(dim);
  return d / 2.0 *
         std::log2(2.0 * std::numbers::pi * std::numbers::e * sigma * sigma);
}

double gaussian_mi_bits(double rho) {
  return -0.5 * std::log2(1.0 - rho * rho);
}

}  // namespace sops::info
