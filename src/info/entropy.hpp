// Differential-entropy estimation and Gaussian references.
//
// The paper's discussion (§6) tracks how the sum of marginal entropies and
// the joint entropy evolve; the Kozachenko–Leonenko k-NN estimator provides
// those curves. The closed-form Gaussian entropies/ MI back the estimator
// tests and the §5.3 comparison bench.
#pragma once

#include <cstddef>
#include <span>

#include "info/sample_matrix.hpp"

namespace sops::support {
class Executor;
}  // namespace sops::support

namespace sops::info {

/// Kozachenko–Leonenko estimate of the differential entropy h(X) in bits,
/// where X is the D-dimensional row variable of `samples` (Euclidean metric):
///
///   ĥ = ψ(m) − ψ(k) + log₂ V_D + (D/m) Σ_s log₂ ε_s
///
/// with ε_s the distance from sample s to its k-th neighbor and V_D the
/// volume of the D-dimensional unit L2 ball.
[[nodiscard]] double entropy_kl(const SampleMatrix& samples, std::size_t k = 4,
                                std::size_t threads = 0);

/// Entropy of the coordinates restricted to one block.
[[nodiscard]] double entropy_kl_block(const SampleMatrix& samples,
                                      const Block& block, std::size_t k = 4,
                                      std::size_t threads = 0);

/// Multi-information as entropy difference Σ_i h(W_i) − h(W): noisier than
/// the KSG estimator (the length scales of the marginal and joint estimates
/// do not cancel) but a useful cross-check.
[[nodiscard]] double multi_information_kl(const SampleMatrix& samples,
                                          std::span<const Block> blocks,
                                          std::size_t k = 4,
                                          std::size_t threads = 0);

/// Executor-aware forms (mirroring KsgOptions::executor): the per-sample
/// query loop dispatches on a caller-lent executor — a persistent pool the
/// batch analysis reuses across frames — instead of forking transient
/// workers per call. Estimates are identical to the `threads` forms for
/// any width (per-sample terms are reduced in a fixed order).
[[nodiscard]] double entropy_kl(const SampleMatrix& samples, std::size_t k,
                                support::Executor& executor);
[[nodiscard]] double entropy_kl_block(const SampleMatrix& samples,
                                      const Block& block, std::size_t k,
                                      support::Executor& executor);
[[nodiscard]] double multi_information_kl(const SampleMatrix& samples,
                                          std::span<const Block> blocks,
                                          std::size_t k,
                                          support::Executor& executor);

class FrameNeighborCache;

/// Cache-aware forms: when `cache` (a FrameNeighborCache bound to `samples`)
/// is non-null, the k-th-neighbor distances come from the cached subspace
/// kd-tree — shared with the KSG calls on the same frame — instead of an
/// exhaustive scan per sample. The k-th distance is an order statistic, so
/// the estimate is bitwise-identical either way; null `cache` is exactly the
/// executor form above.
[[nodiscard]] double entropy_kl(const SampleMatrix& samples, std::size_t k,
                                support::Executor& executor,
                                FrameNeighborCache* cache);
[[nodiscard]] double entropy_kl_block(const SampleMatrix& samples,
                                      const Block& block, std::size_t k,
                                      support::Executor& executor,
                                      FrameNeighborCache* cache);

/// log₂ of the volume of the D-dimensional unit L2 ball.
[[nodiscard]] double log2_unit_ball_volume(std::size_t dim);

/// Closed-form differential entropy (bits) of N(μ, σ²) per dimension:
/// h = D/2 · log₂(2πeσ²). Test oracle.
[[nodiscard]] double gaussian_entropy_bits(std::size_t dim, double sigma);

/// Closed-form mutual information (bits) of a bivariate normal with
/// correlation rho: I = −½ log₂(1 − ρ²). Test oracle.
[[nodiscard]] double gaussian_mi_bits(double rho);

}  // namespace sops::info
