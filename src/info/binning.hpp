// Histogram ("binning") multi-information with optional James–Stein
// shrinkage of the cell probabilities (Hausser & Strimmer style).
//
// This is the comparison baseline of §5.3: the paper reports that in high
// dimension with sparse samples the shrinkage binning estimator
// overestimates so strongly that "almost no change in information could be
// seen". The ablation bench reproduces that failure mode.
#pragma once

#include <cstddef>
#include <span>

#include "info/sample_matrix.hpp"

namespace sops::info {

/// Binning estimator options.
struct BinningOptions {
  std::size_t bins_per_dim = 8;  ///< equal-width bins over each coordinate range
  bool james_stein_shrinkage = true;  ///< shrink cell probabilities toward uniform
};

/// Discrete entropy (bits) of the binned block variable. Exposed for tests.
[[nodiscard]] double binned_entropy(const SampleMatrix& samples,
                                    const Block& block,
                                    const BinningOptions& options);

/// Multi-information Σ_i H(binned W_i) − H(binned W) in bits. Bin edges are
/// shared between the marginal and joint passes (per-coordinate equal-width
/// over the observed range), so the estimate is exactly zero for a single
/// block and non-negative up to shrinkage effects otherwise.
[[nodiscard]] double multi_information_binned(const SampleMatrix& samples,
                                              std::span<const Block> blocks,
                                              const BinningOptions& options = {});

/// James–Stein-shrunk entropy (bits) of a discrete histogram: probabilities
/// are shrunk toward the uniform distribution over `support_size` cells with
/// the closed-form optimal intensity, then plugged into Shannon entropy.
/// With shrinkage disabled this is the maximum-likelihood plug-in entropy.
[[nodiscard]] double shrinkage_entropy_bits(std::span<const std::size_t> counts,
                                            std::size_t support_size,
                                            bool james_stein_shrinkage);

}  // namespace sops::info
