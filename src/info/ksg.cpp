#include "info/ksg.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <numbers>
#include <optional>
#include <vector>

#include "info/digamma.hpp"
#include "info/neighbor_cache.hpp"
#include "support/parallel_for.hpp"
#include "support/simd.hpp"

namespace sops::info {
namespace {

// Distance from sample s to every other sample under the block-max metric,
// returning the k-th smallest (excluding s itself). scratch holds m doubles.
double kth_joint_distance(const SampleMatrix& samples,
                          std::span<const Block> blocks, std::size_t s,
                          std::size_t k, std::vector<double>& scratch) {
  const std::size_t m = samples.count();
  scratch.clear();
  scratch.reserve(m - 1);
  for (std::size_t j = 0; j < m; ++j) {
    if (j == s) continue;
    scratch.push_back(block_max_dist(samples, s, j, blocks));
  }
  std::nth_element(scratch.begin(),
                   scratch.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   scratch.end());
  return scratch[k - 1];
}

}  // namespace

double multi_information_ksg(const SampleMatrix& samples,
                             std::span<const Block> blocks,
                             const KsgOptions& options) {
  const std::size_t m = samples.count();
  const std::size_t n = blocks.size();
  support::expect(options.k >= 1, "multi_information_ksg: k must be >= 1");
  support::expect(m >= options.k + 1,
                  "multi_information_ksg: need at least k+1 samples");
  support::expect(n >= 2, "multi_information_ksg: need at least two blocks");
  validate_blocks(blocks, samples.dim());

  // Per-sample Σ_i ψ-terms, filled in parallel, reduced sequentially so the
  // result does not depend on the thread count.
  std::vector<double> per_sample(m, 0.0);

  // Marginal searchers for the tree path, resolved serially up front (the
  // cache is single-writer; the parallel phase below only reads). The
  // psi_arg mapping and the per-sample ψ accumulation order (block 0, 1, …,
  // each from 0.0) match the brute-force loop exactly, and each tree count
  // equals the scan's strict-< count, so both paths return the same bits.
  const bool use_trees = options.search == NeighborSearch::kBlockedTree;
  std::optional<FrameNeighborCache> local_cache;
  std::vector<const FrameNeighborCache::SubspaceTree*> marginals;
  if (use_trees) {
    FrameNeighborCache* cache = options.cache;
    if (cache != nullptr) {
      support::expect(&cache->samples() == &samples,
                      "multi_information_ksg: cache bound to another matrix");
    } else {
      local_cache.emplace(samples);
      cache = &*local_cache;
    }
    marginals.reserve(n);
    for (const Block& block : blocks) {
      marginals.push_back(&cache->tree_for({&block, 1}));
    }
  }

  const auto psi_arg = [&options](std::size_t c) noexcept {
    return options.convention == KsgConvention::kStandard
               ? c + 1
               : std::max<std::size_t>(c, 1);
  };

  const auto query_chunk = [&](std::size_t begin, std::size_t end) {
    std::vector<double> scratch;
    if (!use_trees) {
      for (std::size_t s = begin; s < end; ++s) {
        const double eps =
            kth_joint_distance(samples, blocks, s, options.k, scratch);
        const double eps_sq = eps * eps;
        double psi_sum = 0.0;
        for (const Block& block : blocks) {
          // c_i: samples strictly closer than ε in this marginal.
          std::size_t c = 0;
          for (std::size_t j = 0; j < m; ++j) {
            if (j == s) continue;
            if (block_dist_sq(samples, s, j, block) < eps_sq) ++c;
          }
          psi_sum += digamma_int(psi_arg(c));
        }
        per_sample[s] = psi_sum;
      }
      return;
    }

    // Tree path: ε per sample first, then per block a batched count query —
    // support::kSimdWidth consecutive samples (contiguous gathered rows)
    // share each tree descent.
    std::vector<double> eps(end - begin);
    for (std::size_t s = begin; s < end; ++s) {
      eps[s - begin] = kth_joint_distance(samples, blocks, s, options.k,
                                          scratch);
      per_sample[s] = 0.0;
    }
    constexpr std::size_t kBatch = support::kSimdWidth;
    static_assert(kBatch <= geom::KdTree::kMaxCountBatch);
    std::array<std::size_t, kBatch> skips;
    std::array<std::size_t, kBatch> counts;
    for (const auto* marginal : marginals) {
      for (std::size_t s0 = begin; s0 < end; s0 += kBatch) {
        const std::size_t batch = std::min(kBatch, end - s0);
        for (std::size_t b = 0; b < batch; ++b) skips[b] = s0 + b;
        const std::span<const double> queries = marginal->points.subspan(
            s0 * marginal->point_dim, batch * marginal->point_dim);
        marginal->tree.count_within_blocks(
            queries, std::span<const double>(eps.data() + (s0 - begin), batch),
            marginal->metric, std::span<const std::size_t>(skips.data(), batch),
            std::span<std::size_t>(counts.data(), batch));
        for (std::size_t b = 0; b < batch; ++b) {
          per_sample[s0 + b] += digamma_int(psi_arg(counts[b]));
        }
      }
    }
  };
  if (options.executor != nullptr) {
    // Pooled path: the caller's persistent executor serves every frame's
    // chunked queries — no per-call thread creation.
    support::parallel_for_chunked(*options.executor, 0, m, query_chunk);
  } else {
    support::parallel_for_chunked(0, m, query_chunk, options.threads);
  }

  double mean_psi = 0.0;
  for (const double v : per_sample) mean_psi += v;
  mean_psi /= static_cast<double>(m);

  const double nats = digamma_int(options.k) +
                      (static_cast<double>(n) - 1.0) * digamma_int(m) - mean_psi;
  return nats * std::numbers::log2e;  // report bits, like the paper's figures
}

double multi_information_ksg(const SampleMatrix& samples, std::size_t block_dim,
                             const KsgOptions& options) {
  support::expect(block_dim > 0 && samples.dim() % block_dim == 0,
                  "multi_information_ksg: dim not a multiple of block_dim");
  const auto blocks = uniform_blocks(samples.dim() / block_dim, block_dim);
  return multi_information_ksg(samples, blocks, options);
}

}  // namespace sops::info
