#include "info/ksg.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

#include "info/digamma.hpp"
#include "support/parallel_for.hpp"

namespace sops::info {
namespace {

// Distance from sample s to every other sample under the block-max metric,
// returning the k-th smallest (excluding s itself). scratch holds m doubles.
double kth_joint_distance(const SampleMatrix& samples,
                          std::span<const Block> blocks, std::size_t s,
                          std::size_t k, std::vector<double>& scratch) {
  const std::size_t m = samples.count();
  scratch.clear();
  scratch.reserve(m - 1);
  for (std::size_t j = 0; j < m; ++j) {
    if (j == s) continue;
    scratch.push_back(block_max_dist(samples, s, j, blocks));
  }
  std::nth_element(scratch.begin(),
                   scratch.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   scratch.end());
  return scratch[k - 1];
}

}  // namespace

double multi_information_ksg(const SampleMatrix& samples,
                             std::span<const Block> blocks,
                             const KsgOptions& options) {
  const std::size_t m = samples.count();
  const std::size_t n = blocks.size();
  support::expect(options.k >= 1, "multi_information_ksg: k must be >= 1");
  support::expect(m >= options.k + 1,
                  "multi_information_ksg: need at least k+1 samples");
  support::expect(n >= 2, "multi_information_ksg: need at least two blocks");
  validate_blocks(blocks, samples.dim());

  // Per-sample Σ_i ψ-terms, filled in parallel, reduced sequentially so the
  // result does not depend on the thread count.
  std::vector<double> per_sample(m, 0.0);

  const auto query_chunk = [&](std::size_t begin, std::size_t end) {
    std::vector<double> scratch;
    for (std::size_t s = begin; s < end; ++s) {
      const double eps =
          kth_joint_distance(samples, blocks, s, options.k, scratch);
      const double eps_sq = eps * eps;
      double psi_sum = 0.0;
      for (const Block& block : blocks) {
        // c_i: samples strictly closer than ε in this marginal.
        std::size_t c = 0;
        for (std::size_t j = 0; j < m; ++j) {
          if (j == s) continue;
          if (block_dist_sq(samples, s, j, block) < eps_sq) ++c;
        }
        const std::size_t psi_arg =
            options.convention == KsgConvention::kStandard
                ? c + 1
                : std::max<std::size_t>(c, 1);
        psi_sum += digamma_int(psi_arg);
      }
      per_sample[s] = psi_sum;
    }
  };
  if (options.executor != nullptr) {
    // Pooled path: the caller's persistent executor serves every frame's
    // chunked queries — no per-call thread creation.
    support::parallel_for_chunked(*options.executor, 0, m, query_chunk);
  } else {
    support::parallel_for_chunked(0, m, query_chunk, options.threads);
  }

  double mean_psi = 0.0;
  for (const double v : per_sample) mean_psi += v;
  mean_psi /= static_cast<double>(m);

  const double nats = digamma_int(options.k) +
                      (static_cast<double>(n) - 1.0) * digamma_int(m) - mean_psi;
  return nats * std::numbers::log2e;  // report bits, like the paper's figures
}

double multi_information_ksg(const SampleMatrix& samples, std::size_t block_dim,
                             const KsgOptions& options) {
  support::expect(block_dim > 0 && samples.dim() % block_dim == 0,
                  "multi_information_ksg: dim not a multiple of block_dim");
  const auto blocks = uniform_blocks(samples.dim() / block_dim, block_dim);
  return multi_information_ksg(samples, blocks, options);
}

}  // namespace sops::info
