// Sample ensembles and observer-variable blocks.
//
// An ensemble at a fixed time step is an m×D matrix: m i.i.d. samples of a
// D-dimensional state. Observer variables (the paper's W₁…W_n) are
// contiguous *blocks* of coordinates — e.g. each particle contributes a
// 2-wide block, a coarse-grained type observer contributes a 2·n_type-wide
// block. The joint metric of the KSG estimator (Eq. 19) is the max over
// blocks of the Euclidean block norm.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "support/error.hpp"

namespace sops::info {

/// One observer variable: a contiguous coordinate range [offset, offset+dim).
struct Block {
  std::size_t offset = 0;
  std::size_t dim = 0;
  friend bool operator==(const Block&, const Block&) = default;
};

/// m samples of a D-dimensional state, row-major.
class SampleMatrix {
 public:
  SampleMatrix() = default;
  SampleMatrix(std::size_t count, std::size_t dim)
      : count_(count), dim_(dim), data_(count * dim, 0.0) {}
  SampleMatrix(std::size_t count, std::size_t dim, std::vector<double> data)
      : count_(count), dim_(dim), data_(std::move(data)) {
    support::expect(data_.size() == count * dim,
                    "SampleMatrix: data size mismatch");
  }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }

  [[nodiscard]] std::span<const double> row(std::size_t i) const {
    support::expect(i < count_, "SampleMatrix::row: index out of range");
    return {data_.data() + i * dim_, dim_};
  }
  [[nodiscard]] std::span<double> row(std::size_t i) {
    support::expect(i < count_, "SampleMatrix::row: index out of range");
    return {data_.data() + i * dim_, dim_};
  }

  [[nodiscard]] double operator()(std::size_t i, std::size_t d) const {
    return data_[i * dim_ + d];
  }
  [[nodiscard]] double& operator()(std::size_t i, std::size_t d) {
    return data_[i * dim_ + d];
  }

  [[nodiscard]] std::span<const double> flat() const noexcept { return data_; }

 private:
  std::size_t count_ = 0;
  std::size_t dim_ = 0;
  std::vector<double> data_;
};

/// Returns n equal blocks of width `block_dim` covering [0, n·block_dim) —
/// the per-particle observer layout (block_dim = 2).
[[nodiscard]] std::vector<Block> uniform_blocks(std::size_t n,
                                                std::size_t block_dim);

/// Verifies blocks are non-overlapping, in-range, and jointly cover `dim`
/// coordinates (they need not be ordered). Throws on violation.
void validate_blocks(std::span<const Block> blocks, std::size_t dim);

/// Squared Euclidean norm of the block coordinates of (row a − row b).
[[nodiscard]] double block_dist_sq(const SampleMatrix& samples, std::size_t a,
                                   std::size_t b, const Block& block) noexcept;

/// The paper's joint metric (Eq. 19): max over blocks of the block L2 norm.
[[nodiscard]] double block_max_dist(const SampleMatrix& samples, std::size_t a,
                                    std::size_t b,
                                    std::span<const Block> blocks) noexcept;

}  // namespace sops::info
