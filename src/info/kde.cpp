#include "info/kde.hpp"

#include <cmath>
#include <numbers>
#include <vector>

#include "support/parallel_for.hpp"

namespace sops::info {
namespace {

// Pooled standard deviation over the block coordinates (bandwidth scale).
double block_scale(const SampleMatrix& samples, const Block& block) {
  const std::size_t m = samples.count();
  double mean_sq = 0.0;
  for (std::size_t d = block.offset; d < block.offset + block.dim; ++d) {
    double mean = 0.0;
    for (std::size_t s = 0; s < m; ++s) mean += samples(s, d);
    mean /= static_cast<double>(m);
    double var = 0.0;
    for (std::size_t s = 0; s < m; ++s) {
      const double diff = samples(s, d) - mean;
      var += diff * diff;
    }
    mean_sq += var / static_cast<double>(m);
  }
  return std::sqrt(mean_sq / static_cast<double>(block.dim));
}

}  // namespace

std::vector<double> kde_log2_density(const SampleMatrix& samples,
                                     const Block& block,
                                     const KdeOptions& options) {
  const std::size_t m = samples.count();
  support::expect(m >= 2, "kde_log2_density: need at least two samples");
  support::expect(options.bandwidth_scale > 0.0,
                  "kde_log2_density: bandwidth must be positive");

  const double d = static_cast<double>(block.dim);
  const double sigma = block_scale(samples, block);
  // Degenerate (zero-variance) blocks get a nominal bandwidth so the
  // estimate stays finite (the densities are then equal at every sample).
  const double h =
      options.bandwidth_scale * (sigma > 0.0 ? sigma : 1.0) *
      std::pow(static_cast<double>(m), -1.0 / (d + 4.0));
  const double inv_two_h_sq = 1.0 / (2.0 * h * h);
  const double log2_norm =
      -d * std::log2(h * std::sqrt(2.0 * std::numbers::pi)) -
      std::log2(static_cast<double>(m - 1));

  std::vector<double> log_density(m, 0.0);
  const auto chunk = [&](std::size_t begin, std::size_t end) {
    for (std::size_t s = begin; s < end; ++s) {
      double sum = 0.0;
      for (std::size_t j = 0; j < m; ++j) {
        if (j == s) continue;
        sum += std::exp(-block_dist_sq(samples, s, j, block) * inv_two_h_sq);
      }
      // Floor at the smallest positive double to keep log finite for
      // isolated samples.
      log_density[s] = std::log2(std::max(sum, 1e-300)) + log2_norm;
    }
  };
  if (options.executor != nullptr) {
    // Pooled path: the caller's persistent executor serves every density
    // evaluation of the batch — no per-call thread creation.
    support::parallel_for_chunked(*options.executor, 0, m, chunk);
  } else {
    support::parallel_for_chunked(0, m, chunk, options.threads);
  }
  return log_density;
}

double multi_information_kde(const SampleMatrix& samples,
                             std::span<const Block> blocks,
                             const KdeOptions& options) {
  validate_blocks(blocks, samples.dim());
  const std::size_t m = samples.count();

  const Block joint{0, samples.dim()};
  const std::vector<double> joint_log = kde_log2_density(samples, joint, options);

  std::vector<double> marginal_log_sum(m, 0.0);
  for (const Block& block : blocks) {
    const std::vector<double> marginal = kde_log2_density(samples, block, options);
    for (std::size_t s = 0; s < m; ++s) marginal_log_sum[s] += marginal[s];
  }

  double total = 0.0;
  for (std::size_t s = 0; s < m; ++s) {
    total += joint_log[s] - marginal_log_sum[s];
  }
  return total / static_cast<double>(m);
}

}  // namespace sops::info
