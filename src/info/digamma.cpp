#include "info/digamma.hpp"

#include <array>
#include <cmath>

#include "support/error.hpp"

namespace sops::info {
namespace {

constexpr double kEulerMascheroni = 0.57721566490153286060651209008240243;

// ψ values for 1..64 built once via the exact recurrence; the estimators
// call ψ on small neighbor counts millions of times.
const std::array<double, 65>& small_int_table() {
  static const std::array<double, 65> table = [] {
    std::array<double, 65> t{};
    t[1] = -kEulerMascheroni;
    for (unsigned n = 1; n < 64; ++n) t[n + 1] = t[n] + 1.0 / n;
    return t;
  }();
  return table;
}

}  // namespace

double digamma(double x) {
  support::expect(x > 0.0, "digamma: requires x > 0");
  double result = 0.0;
  // Recurrence ψ(x) = ψ(x+1) − 1/x until the asymptotic region. Shifting to
  // x ≥ 10 keeps the truncated Bernoulli series below 1e-13 absolute error.
  while (x < 10.0) {
    result -= 1.0 / x;
    x += 1.0;
  }
  // Asymptotic series ψ(x) ≈ ln x − 1/2x − Σ B_{2k}/(2k x^{2k}).
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  result += std::log(x) - 0.5 * inv -
            inv2 * (1.0 / 12.0 -
                    inv2 * (1.0 / 120.0 -
                            inv2 * (1.0 / 252.0 -
                                    inv2 * (1.0 / 240.0 - inv2 * (1.0 / 132.0)))));
  return result;
}

double digamma_int(unsigned long long n) {
  support::expect(n > 0, "digamma_int: requires n > 0");
  const auto& table = small_int_table();
  if (n < table.size()) return table[n];
  return digamma(static_cast<double>(n));
}

}  // namespace sops::info
