// Transfer entropy and KSG conditional mutual information — the paper's
// §7.3 future work ("the methods developed in [24] promise to furnish tools
// to investigate the information dynamics between individual particles over
// time").
//
// Transfer entropy from a source process X to a target process Y is
//
//   TE(X→Y) = I(Y⁺ ; X | Y) ,
//
// the information the source's present adds about the target's next state
// beyond the target's own present. We estimate it with the KSG-style
// conditional-MI estimator (Frenzel–Pompe):
//
//   Î = ψ(k) − ⟨ ψ(n_{y⁺y}+1) + ψ(n_{xy}+1) − ψ(n_y+1) ⟩ ,
//
// with ε_s the k-th neighbor distance in the joint (y⁺, x, y) max-block
// space and the n_· marginal counts within ε_s.
//
// Note the paper's own caveat (§5.2): time-resolved statistics need
// particle identity across time, so these estimators consume RAW
// trajectories — never the permutation-reduced shape-space ensembles.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "geom/vec2.hpp"
#include "info/ksg.hpp"
#include "info/sample_matrix.hpp"

namespace sops::support {
class Executor;
}  // namespace sops::support

namespace sops::info {

/// Options for the conditional estimators.
struct TransferEntropyOptions {
  std::size_t k = 4;        ///< neighbor order
  std::size_t lag = 1;      ///< time offset between "present" and "next"
  std::size_t threads = 0;  ///< 0 = hardware concurrency
  /// When set, the estimator's parallel loops (per-sample queries; the TE
  /// matrix's pair fan-out) dispatch on this executor and `threads` is
  /// ignored — mirroring KsgOptions::executor, so batch analyses reuse one
  /// persistent pool instead of forking workers per call. Never affects
  /// the estimate.
  support::Executor* executor = nullptr;
  /// Neighbor-search implementation (shared with KsgOptions); never affects
  /// the estimate.
  NeighborSearch search = NeighborSearch::kBlockedTree;
  /// Optional per-frame tree cache for conditional_mutual_information_ksg
  /// (kBlockedTree only); must be bound to the matrix passed to that call.
  /// Ignored by the estimators that build their own embedding matrices
  /// (transfer_entropy and friends), whose subspaces exist only per call.
  FrameNeighborCache* cache = nullptr;
};

/// KSG/Frenzel–Pompe conditional mutual information I(A ; B | C) in bits.
/// `samples` rows are joint draws; the three blocks partition the columns.
/// The metric is the max over the three block L2 norms (consistent with the
/// unconditional estimator).
[[nodiscard]] double conditional_mutual_information_ksg(
    const SampleMatrix& samples, const Block& a, const Block& b,
    const Block& c, std::size_t k = 4, std::size_t threads = 0);

/// Executor-aware form: per-sample queries dispatch on the caller's lent
/// executor instead of forking `threads` transient workers. Identical
/// estimate for any width.
[[nodiscard]] double conditional_mutual_information_ksg(
    const SampleMatrix& samples, const Block& a, const Block& b,
    const Block& c, std::size_t k, support::Executor& executor);

/// Options form: takes k, threading, the neighbor-search knob, and an
/// optional FrameNeighborCache bound to `samples` (subspace trees are then
/// shared with other estimator calls on the same matrix). `lag` is unused.
[[nodiscard]] double conditional_mutual_information_ksg(
    const SampleMatrix& samples, const Block& a, const Block& b,
    const Block& c, const TransferEntropyOptions& options);

/// Transfer entropy (bits) between two scalar-block time series.
///
/// `source[t]` and `target[t]` are the processes' values at step t, each of
/// width `dim` doubles (a particle contributes dim = 2). Embedding order is
/// one (the paper's Markov dynamics, Eq. 6, are order one by construction).
/// Samples are the T − lag time-adjacent triples (target_{t+lag},
/// source_t, target_t); stationarity over the window is assumed, matching
/// how local information transfer is applied to such systems [24].
[[nodiscard]] double transfer_entropy(
    std::span<const double> source, std::span<const double> target,
    std::size_t dim, const TransferEntropyOptions& options = {});

/// Convenience for particle trajectories: TE(particle a → particle b) from
/// per-frame positions. `frames[t]` is the full configuration at recorded
/// step t (identity-preserving order, i.e. straight from sim::Trajectory).
[[nodiscard]] double particle_transfer_entropy(
    std::span<const std::vector<geom::Vec2>> frames, std::size_t source_index,
    std::size_t target_index, const TransferEntropyOptions& options = {});

/// Pairwise TE matrix over all particles of a trajectory: entry (a, b) is
/// TE(a → b); the diagonal is zero. O(n²) estimator runs — intended for
/// small collectives.
[[nodiscard]] std::vector<std::vector<double>> transfer_entropy_matrix(
    std::span<const std::vector<geom::Vec2>> frames,
    const TransferEntropyOptions& options = {});

/// Active information storage (bits): AIS(X) = I(X_{t+lag} ; X_t), the
/// information a process's present carries about its own next state — the
/// storage counterpart of transfer in the Lizier framework [24]. Estimated
/// as a 2-block KSG mutual information over time-adjacent pairs.
[[nodiscard]] double active_information_storage(
    std::span<const double> series, std::size_t dim,
    const TransferEntropyOptions& options = {});

/// AIS of one particle's positional process.
[[nodiscard]] double particle_active_information_storage(
    std::span<const std::vector<geom::Vec2>> frames, std::size_t index,
    const TransferEntropyOptions& options = {});

}  // namespace sops::info
