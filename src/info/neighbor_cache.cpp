#include "info/neighbor_cache.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace sops::info {

FrameNeighborCache::FrameNeighborCache(const SampleMatrix& samples)
    : samples_(&samples) {}

const FrameNeighborCache::SubspaceTree& FrameNeighborCache::tree_for(
    std::span<const Block> blocks) {
  support::expect(!blocks.empty(), "FrameNeighborCache: no blocks");
  for (const Block& b : blocks) {
    support::expect(b.dim > 0 && b.offset + b.dim <= samples_->dim(),
                    "FrameNeighborCache: block out of range");
  }

  for (const Entry& entry : entries_) {
    if (std::ranges::equal(entry.key, blocks)) return *entry.tree;
  }

  const std::size_t m = samples_->count();
  std::size_t point_dim = 0;
  for (const Block& b : blocks) point_dim += b.dim;

  // Zero-copy when the blocks tile each full row in listed order — then the
  // matrix storage already is the gathered layout.
  bool zero_copy = true;
  {
    std::size_t cursor = 0;
    for (const Block& b : blocks) {
      if (b.offset != cursor) {
        zero_copy = false;
        break;
      }
      cursor += b.dim;
    }
    zero_copy = zero_copy && point_dim == samples_->dim();
  }

  std::vector<geom::DimBlock> metric;
  metric.reserve(blocks.size());
  std::size_t rebased_offset = 0;
  for (const Block& b : blocks) {
    metric.push_back({rebased_offset, b.dim});
    rebased_offset += b.dim;
  }

  std::vector<double> storage;
  if (!zero_copy) {
    storage.resize(m * point_dim);
    for (std::size_t s = 0; s < m; ++s) {
      const std::span<const double> row = samples_->row(s);
      double* out = storage.data() + s * point_dim;
      for (const Block& b : blocks) {
        std::copy(row.data() + b.offset, row.data() + b.offset + b.dim, out);
        out += b.dim;
      }
    }
  }

  Entry entry;
  entry.key.assign(blocks.begin(), blocks.end());
  entry.tree = std::make_unique<SubspaceTree>(
      std::move(storage), std::move(metric), point_dim, samples_->flat());
  entries_.push_back(std::move(entry));
  return *entries_.back().tree;
}

}  // namespace sops::info
