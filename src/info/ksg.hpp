// Kraskov–Stögbauer–Grassberger multi-information estimator (paper §5.3,
// Eqs. 18–20):
//
//   I(W₁,…,W_n) ≈ ψ(k) + (n−1)ψ(m) − ⟨ Σ_i ψ(c_i) ⟩,
//
// where the joint metric is the max over observer blocks of the block L2
// norm, ε_s is the distance to the k-th neighbor of sample s under that
// metric, and c_i counts samples whose block-i marginal lies strictly
// within ε_s.
#pragma once

#include <cstddef>
#include <span>

#include "info/sample_matrix.hpp"

namespace sops::support {
class Executor;
}  // namespace sops::support

namespace sops::info {

class FrameNeighborCache;

/// How the marginal neighbor counts are computed. Both paths compare the
/// identical squared distances with the identical strict < and therefore
/// produce bitwise-equal estimates; the choice is purely a throughput knob.
enum class NeighborSearch {
  /// Per-block kd-trees with batched (kSimdWidth queries per descent)
  /// count queries — the default.
  kBlockedTree,
  /// The original exhaustive per-pair scan; the reference path.
  kBruteForce,
};

/// Which ψ-argument convention to use for the marginal counts.
enum class KsgConvention {
  /// Standard KSG-1: ψ(c_i + 1), where c_i excludes the sample itself.
  /// This is the convention of Kraskov et al. (2004) and the default.
  kStandard,
  /// The paper's Eq. (18)/(20) literally: ψ(c_i), with c_i floored at 1
  /// because ψ(0) diverges (c_i = 0 occurs when no other sample is strictly
  /// closer in marginal i than the k-th joint neighbor).
  kPaperLiteral,
};

/// Options of the estimator.
struct KsgOptions {
  std::size_t k = 4;  ///< neighbor order (paper §6 uses 4; §5.3 mentions 5)
  KsgConvention convention = KsgConvention::kStandard;
  std::size_t threads = 0;  ///< 0 = hardware concurrency
  /// When set, the per-sample query loop dispatches its chunks on this
  /// executor (a persistent pool the caller reuses across frames) and
  /// `threads` is ignored; when null, a transient fork/join of `threads`
  /// workers runs per call. Never affects the estimate: per-sample terms
  /// are reduced in a fixed order regardless of who computes them.
  support::Executor* executor = nullptr;
  /// Neighbor-count implementation; never affects the estimate.
  NeighborSearch search = NeighborSearch::kBlockedTree;
  /// Optional per-frame tree cache (kBlockedTree only). Must be bound to
  /// the same SampleMatrix the estimator is called on; marginal trees are
  /// then built once per frame instead of once per call. The estimator
  /// resolves every tree serially before its parallel query phase, per the
  /// cache's single-writer contract.
  FrameNeighborCache* cache = nullptr;
};

/// Estimates the multi-information between the observer blocks of `samples`,
/// in bits (the digamma formula is evaluated in nats and converted).
///
/// Requirements: at least k+1 samples, at least two blocks, blocks valid for
/// the sample dimension. Complexity O(m² · D) with D = total dimension;
/// parallel over samples; the result is independent of the thread count
/// (per-sample contributions are reduced in a fixed order).
///
/// Exact ties in the joint metric (possible with duplicated samples) are
/// resolved by index order, matching a stable sort over (distance, index).
[[nodiscard]] double multi_information_ksg(const SampleMatrix& samples,
                                           std::span<const Block> blocks,
                                           const KsgOptions& options = {});

/// Convenience overload: n equal-width blocks of `block_dim` coordinates.
[[nodiscard]] double multi_information_ksg(const SampleMatrix& samples,
                                           std::size_t block_dim,
                                           const KsgOptions& options = {});

}  // namespace sops::info
