#include "info/binning.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <vector>

namespace sops::info {
namespace {

// Per-coordinate equal-width bin index in [0, bins).
struct CoordinateBinner {
  double lo = 0.0;
  double width = 1.0;
  std::size_t bins = 1;

  [[nodiscard]] std::size_t bin(double v) const noexcept {
    if (width <= 0.0) return 0;
    const auto raw = static_cast<long long>((v - lo) / width);
    const long long clamped =
        std::clamp<long long>(raw, 0, static_cast<long long>(bins) - 1);
    return static_cast<std::size_t>(clamped);
  }
};

std::vector<CoordinateBinner> make_binners(const SampleMatrix& samples,
                                           std::size_t bins) {
  std::vector<CoordinateBinner> binners(samples.dim());
  for (std::size_t d = 0; d < samples.dim(); ++d) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -lo;
    for (std::size_t s = 0; s < samples.count(); ++s) {
      lo = std::min(lo, samples(s, d));
      hi = std::max(hi, samples(s, d));
    }
    binners[d] = {lo, hi > lo ? (hi - lo) / static_cast<double>(bins) : 0.0,
                  bins};
  }
  return binners;
}

// Histogram of the joint bin tuples of a block, keyed by a mixed hash of the
// per-coordinate bin indices.
std::vector<std::size_t> block_histogram(
    const SampleMatrix& samples, const Block& block,
    std::span<const CoordinateBinner> binners) {
  std::unordered_map<std::size_t, std::size_t> cells;
  cells.reserve(samples.count());
  for (std::size_t s = 0; s < samples.count(); ++s) {
    std::size_t key = 0xcbf29ce484222325ull;  // FNV-1a over bin indices
    for (std::size_t d = block.offset; d < block.offset + block.dim; ++d) {
      key ^= binners[d].bin(samples(s, d)) + 1;
      key *= 0x100000001b3ull;
    }
    ++cells[key];
  }
  std::vector<std::size_t> counts;
  counts.reserve(cells.size());
  for (const auto& [key, count] : cells) counts.push_back(count);
  return counts;
}

std::size_t block_support(const Block& block, const BinningOptions& options) {
  // bins^dim, saturating; only used as the shrinkage target support.
  double support = 1.0;
  for (std::size_t d = 0; d < block.dim; ++d) {
    support *= static_cast<double>(options.bins_per_dim);
    if (support > 1e18) return static_cast<std::size_t>(1e18);
  }
  return static_cast<std::size_t>(support);
}

}  // namespace

double shrinkage_entropy_bits(std::span<const std::size_t> counts,
                              std::size_t support_size,
                              bool james_stein_shrinkage) {
  support::expect(support_size >= 1,
                  "shrinkage_entropy_bits: empty support");
  std::size_t total = 0;
  for (const std::size_t c : counts) total += c;
  support::expect(total > 0, "shrinkage_entropy_bits: no observations");
  const double m = static_cast<double>(total);

  double lambda = 0.0;
  if (james_stein_shrinkage && total > 1) {
    // Optimal intensity λ* = (1 − Σ p̂²) / ((m − 1) Σ (t_k − p̂_k)²) with the
    // uniform target t_k = 1/support (Hausser & Strimmer 2009). Cells with
    // zero counts contribute t_k² each.
    const double t = 1.0 / static_cast<double>(support_size);
    double sum_p_sq = 0.0;
    double sum_dev_sq = 0.0;
    for (const std::size_t c : counts) {
      const double p = static_cast<double>(c) / m;
      sum_p_sq += p * p;
      sum_dev_sq += (t - p) * (t - p);
    }
    const double empty_cells =
        static_cast<double>(support_size) - static_cast<double>(counts.size());
    sum_dev_sq += empty_cells * t * t;
    if (sum_dev_sq > 0.0) {
      lambda = std::clamp((1.0 - sum_p_sq) / ((m - 1.0) * sum_dev_sq), 0.0, 1.0);
    }
  }

  const double t = 1.0 / static_cast<double>(support_size);
  double entropy = 0.0;
  for (const std::size_t c : counts) {
    const double p = (1.0 - lambda) * static_cast<double>(c) / m + lambda * t;
    if (p > 0.0) entropy -= p * std::log2(p);
  }
  if (lambda > 0.0) {
    const double empty_cells =
        static_cast<double>(support_size) - static_cast<double>(counts.size());
    const double p_empty = lambda * t;
    if (p_empty > 0.0 && empty_cells > 0.0) {
      entropy -= empty_cells * p_empty * std::log2(p_empty);
    }
  }
  return entropy;
}

double binned_entropy(const SampleMatrix& samples, const Block& block,
                      const BinningOptions& options) {
  support::expect(options.bins_per_dim >= 1, "binned_entropy: need >= 1 bin");
  support::expect(samples.count() > 0, "binned_entropy: no samples");
  const auto binners = make_binners(samples, options.bins_per_dim);
  const auto counts = block_histogram(samples, block, binners);
  return shrinkage_entropy_bits(counts, block_support(block, options),
                                options.james_stein_shrinkage);
}

double multi_information_binned(const SampleMatrix& samples,
                                std::span<const Block> blocks,
                                const BinningOptions& options) {
  validate_blocks(blocks, samples.dim());
  const auto binners = make_binners(samples, options.bins_per_dim);

  double marginal_sum = 0.0;
  for (const Block& block : blocks) {
    const auto counts = block_histogram(samples, block, binners);
    marginal_sum += shrinkage_entropy_bits(
        counts, block_support(block, options), options.james_stein_shrinkage);
  }
  const Block joint{0, samples.dim()};
  const auto joint_counts = block_histogram(samples, joint, binners);
  const double joint_entropy = shrinkage_entropy_bits(
      joint_counts, block_support(joint, options), options.james_stein_shrinkage);
  return marginal_sum - joint_entropy;
}

}  // namespace sops::info
