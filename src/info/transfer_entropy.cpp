#include "info/transfer_entropy.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <numbers>
#include <optional>

#include "info/digamma.hpp"
#include "info/ksg.hpp"
#include "info/neighbor_cache.hpp"
#include "support/parallel_for.hpp"
#include "support/simd.hpp"

namespace sops::info {
namespace {

// Max of the three block distances between rows s and j.
double joint_dist(const SampleMatrix& samples, std::size_t s, std::size_t j,
                  const Block& a, const Block& b, const Block& c) {
  const double d_sq = std::max({block_dist_sq(samples, s, j, a),
                                block_dist_sq(samples, s, j, b),
                                block_dist_sq(samples, s, j, c)});
  return std::sqrt(d_sq);
}

// One implementation behind the dispatch forms of the conditional MI:
// the caller's lent executor when present, a transient fork/join otherwise;
// subspace kd-trees (kBlockedTree) or exhaustive scans (kBruteForce) for the
// neighbor work — both produce identical bits (same distances, same strict-<
// comparisons; the joint ε is the same order statistic either way).
double conditional_mi_impl(const SampleMatrix& samples, const Block& a,
                           const Block& b, const Block& c, std::size_t k,
                           support::Executor* executor, std::size_t threads,
                           NeighborSearch search, FrameNeighborCache* cache) {
  const std::size_t m = samples.count();
  support::expect(k >= 1, "conditional MI: k must be >= 1");
  support::expect(m >= k + 1, "conditional MI: need at least k+1 samples");
  validate_blocks(std::vector<Block>{a, b, c}, samples.dim());

  // Tree path: resolve the four subspace searchers serially up front (the
  // cache is single-writer; the parallel chunks only read).
  const bool use_trees = search == NeighborSearch::kBlockedTree;
  std::optional<FrameNeighborCache> local_cache;
  const FrameNeighborCache::SubspaceTree* joint_tree = nullptr;
  const FrameNeighborCache::SubspaceTree* ac_tree = nullptr;
  const FrameNeighborCache::SubspaceTree* bc_tree = nullptr;
  const FrameNeighborCache::SubspaceTree* c_tree = nullptr;
  if (use_trees) {
    if (cache != nullptr) {
      support::expect(&cache->samples() == &samples,
                      "conditional MI: cache bound to another matrix");
    } else {
      local_cache.emplace(samples);
      cache = &*local_cache;
    }
    const std::array<Block, 3> abc = {a, b, c};
    const std::array<Block, 2> ac = {a, c};
    const std::array<Block, 2> bc = {b, c};
    joint_tree = &cache->tree_for(abc);
    ac_tree = &cache->tree_for(ac);
    bc_tree = &cache->tree_for(bc);
    c_tree = &cache->tree_for({&c, 1});
  }

  std::vector<double> per_sample(m, 0.0);
  const auto chunk = [&](std::size_t begin, std::size_t end) {
    if (use_trees) {
      // ε per sample via the joint tree: the k-th smallest squared
      // block-max distance is the square of the brute path's k-th smallest
      // distance (sqrt is monotone), so the ε doubles agree bitwise.
      std::vector<double> eps(end - begin);
      for (std::size_t s = begin; s < end; ++s) {
        eps[s - begin] = std::sqrt(joint_tree->tree.kth_block_dist_sq(
            joint_tree->query(s), k, joint_tree->metric, s));
      }
      // Marginal counts in the (a,c), (b,c) and (c) subspaces, strictly
      // within ε (Frenzel–Pompe convention), batched kSimdWidth queries per
      // descent.
      constexpr std::size_t kBatch = support::kSimdWidth;
      static_assert(kBatch <= geom::KdTree::kMaxCountBatch);
      std::vector<std::size_t> n_ac(end - begin);
      std::vector<std::size_t> n_bc(end - begin);
      std::vector<std::size_t> n_c(end - begin);
      std::array<std::size_t, kBatch> skips;
      const std::array<
          std::pair<const FrameNeighborCache::SubspaceTree*, std::size_t*>, 3>
          passes = {{{ac_tree, n_ac.data()},
                     {bc_tree, n_bc.data()},
                     {c_tree, n_c.data()}}};
      for (const auto& [subspace, counts] : passes) {
        for (std::size_t s0 = begin; s0 < end; s0 += kBatch) {
          const std::size_t batch = std::min(kBatch, end - s0);
          for (std::size_t i = 0; i < batch; ++i) skips[i] = s0 + i;
          subspace->tree.count_within_blocks(
              subspace->points.subspan(s0 * subspace->point_dim,
                                       batch * subspace->point_dim),
              std::span<const double>(eps.data() + (s0 - begin), batch),
              subspace->metric,
              std::span<const std::size_t>(skips.data(), batch),
              std::span<std::size_t>(counts + (s0 - begin), batch));
        }
      }
      for (std::size_t s = begin; s < end; ++s) {
        const std::size_t i = s - begin;
        per_sample[s] = digamma_int(n_ac[i] + 1) + digamma_int(n_bc[i] + 1) -
                        digamma_int(n_c[i] + 1);
      }
      return;
    }

    std::vector<double> scratch;
    for (std::size_t s = begin; s < end; ++s) {
      scratch.clear();
      scratch.reserve(m - 1);
      for (std::size_t j = 0; j < m; ++j) {
        if (j != s) scratch.push_back(joint_dist(samples, s, j, a, b, c));
      }
      std::nth_element(scratch.begin(),
                       scratch.begin() + static_cast<std::ptrdiff_t>(k - 1),
                       scratch.end());
      const double eps = scratch[k - 1];
      const double eps_sq = eps * eps;

      // Marginal counts in the (a,c), (b,c) and (c) subspaces, strictly
      // within ε (Frenzel–Pompe convention).
      std::size_t n_ac = 0;
      std::size_t n_bc = 0;
      std::size_t n_c = 0;
      for (std::size_t j = 0; j < m; ++j) {
        if (j == s) continue;
        const double dc = block_dist_sq(samples, s, j, c);
        if (dc >= eps_sq) continue;
        ++n_c;
        if (std::max(dc, block_dist_sq(samples, s, j, a)) < eps_sq) ++n_ac;
        if (std::max(dc, block_dist_sq(samples, s, j, b)) < eps_sq) ++n_bc;
      }
      per_sample[s] = digamma_int(n_ac + 1) + digamma_int(n_bc + 1) -
                      digamma_int(n_c + 1);
    }
  };
  if (executor != nullptr) {
    support::parallel_for_chunked(*executor, 0, m, chunk);
  } else {
    support::parallel_for_chunked(0, m, chunk, threads);
  }

  double mean_psi = 0.0;
  for (const double v : per_sample) mean_psi += v;
  mean_psi /= static_cast<double>(m);

  return (digamma_int(k) - mean_psi) * std::numbers::log2e;
}

}  // namespace

double conditional_mutual_information_ksg(const SampleMatrix& samples,
                                          const Block& a, const Block& b,
                                          const Block& c, std::size_t k,
                                          std::size_t threads) {
  return conditional_mi_impl(samples, a, b, c, k, nullptr, threads,
                             NeighborSearch::kBlockedTree, nullptr);
}

double conditional_mutual_information_ksg(const SampleMatrix& samples,
                                          const Block& a, const Block& b,
                                          const Block& c, std::size_t k,
                                          support::Executor& executor) {
  return conditional_mi_impl(samples, a, b, c, k, &executor, 1,
                             NeighborSearch::kBlockedTree, nullptr);
}

double conditional_mutual_information_ksg(
    const SampleMatrix& samples, const Block& a, const Block& b,
    const Block& c, const TransferEntropyOptions& options) {
  return conditional_mi_impl(samples, a, b, c, options.k, options.executor,
                             options.threads, options.search, options.cache);
}

double transfer_entropy(std::span<const double> source,
                        std::span<const double> target, std::size_t dim,
                        const TransferEntropyOptions& options) {
  support::expect(dim >= 1, "transfer_entropy: dim must be >= 1");
  support::expect(source.size() == target.size(),
                  "transfer_entropy: series length mismatch");
  support::expect(source.size() % dim == 0,
                  "transfer_entropy: series not a multiple of dim");
  support::expect(options.lag >= 1, "transfer_entropy: lag must be >= 1");
  const std::size_t steps = source.size() / dim;
  support::expect(steps > options.lag + options.k,
                  "transfer_entropy: series too short for lag and k");

  const std::size_t m = steps - options.lag;
  // Row layout: [ target_{t+lag} | source_t | target_t ].
  SampleMatrix samples(m, 3 * dim);
  for (std::size_t t = 0; t < m; ++t) {
    auto row = samples.row(t);
    for (std::size_t d = 0; d < dim; ++d) {
      row[d] = target[(t + options.lag) * dim + d];
      row[dim + d] = source[t * dim + d];
      row[2 * dim + d] = target[t * dim + d];
    }
  }
  const Block future{0, dim};
  const Block src{dim, dim};
  const Block present{2 * dim, dim};
  // The embedding matrix is local to this call, so any caller-provided
  // cache (bound to *their* matrix) must not be used here.
  return conditional_mi_impl(samples, future, src, present, options.k,
                             options.executor, options.threads, options.search,
                             nullptr);
}

namespace {

// Flattens one particle's positions across frames into [x0,y0,x1,y1,…].
std::vector<double> particle_series(
    std::span<const std::vector<geom::Vec2>> frames, std::size_t index) {
  std::vector<double> series;
  series.reserve(frames.size() * 2);
  for (const auto& frame : frames) {
    support::expect(index < frame.size(),
                    "particle_series: index out of range");
    series.push_back(frame[index].x);
    series.push_back(frame[index].y);
  }
  return series;
}

}  // namespace

double particle_transfer_entropy(std::span<const std::vector<geom::Vec2>> frames,
                                 std::size_t source_index,
                                 std::size_t target_index,
                                 const TransferEntropyOptions& options) {
  const std::vector<double> source = particle_series(frames, source_index);
  const std::vector<double> target = particle_series(frames, target_index);
  return transfer_entropy(source, target, 2, options);
}

std::vector<std::vector<double>> transfer_entropy_matrix(
    std::span<const std::vector<geom::Vec2>> frames,
    const TransferEntropyOptions& options) {
  support::expect(!frames.empty(), "transfer_entropy_matrix: no frames");
  const std::size_t n = frames.front().size();

  // Pre-extract all series once.
  std::vector<std::vector<double>> series;
  series.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    series.push_back(particle_series(frames, i));
  }

  std::vector<std::vector<double>> matrix(n, std::vector<double>(n, 0.0));
  // The pair fan-out is the parallel axis; each estimator call stays
  // serial so the lent (or transient) workers are never oversubscribed.
  TransferEntropyOptions inner = options;
  inner.threads = 1;
  inner.executor = nullptr;
  const auto cell_body = [&](std::size_t cell) {
    const std::size_t a = cell / n;
    const std::size_t b = cell % n;
    if (a == b) return;
    matrix[a][b] = transfer_entropy(series[a], series[b], 2, inner);
  };
  if (options.executor != nullptr) {
    support::parallel_for(*options.executor, 0, n * n, cell_body);
  } else {
    support::parallel_for(0, n * n, cell_body, options.threads);
  }
  return matrix;
}

double active_information_storage(std::span<const double> series,
                                  std::size_t dim,
                                  const TransferEntropyOptions& options) {
  support::expect(dim >= 1, "active_information_storage: dim must be >= 1");
  support::expect(series.size() % dim == 0,
                  "active_information_storage: series not a multiple of dim");
  support::expect(options.lag >= 1,
                  "active_information_storage: lag must be >= 1");
  const std::size_t steps = series.size() / dim;
  support::expect(steps > options.lag + options.k,
                  "active_information_storage: series too short");

  const std::size_t m = steps - options.lag;
  SampleMatrix samples(m, 2 * dim);
  for (std::size_t t = 0; t < m; ++t) {
    auto row = samples.row(t);
    for (std::size_t d = 0; d < dim; ++d) {
      row[d] = series[(t + options.lag) * dim + d];
      row[dim + d] = series[t * dim + d];
    }
  }
  KsgOptions ksg;
  ksg.k = options.k;
  ksg.threads = options.threads;
  ksg.executor = options.executor;
  ksg.search = options.search;
  return multi_information_ksg(samples, dim, ksg);
}

double particle_active_information_storage(
    std::span<const std::vector<geom::Vec2>> frames, std::size_t index,
    const TransferEntropyOptions& options) {
  std::vector<double> series;
  series.reserve(frames.size() * 2);
  for (const auto& frame : frames) {
    support::expect(index < frame.size(),
                    "particle_active_information_storage: index out of range");
    series.push_back(frame[index].x);
    series.push_back(frame[index].y);
  }
  return active_information_storage(series, 2, options);
}

}  // namespace sops::info
