// Per-frame kd-tree reuse across the information estimators.
//
// One analyzer frame runs many estimator calls against the same SampleMatrix
// — the KSG multi-information, its decomposition terms, and the per-block
// entropies all query the same marginal subspaces. Without a cache each call
// rebuilds its kd-trees from scratch; a FrameNeighborCache bound to the
// frame's matrix builds each subspace tree once, on first use, and hands the
// same tree to every subsequent query on that subspace.
//
// Thread-safety contract: tree_for() mutates the cache and must be called
// from one thread at a time. The estimators honor this by resolving every
// tree they need serially at entry, before fanning their per-sample query
// chunks out on the executor — the parallel phase only reads.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "geom/kdtree.hpp"
#include "info/sample_matrix.hpp"

namespace sops::info {

/// Caches one kd-tree per queried subspace of a single SampleMatrix. The
/// matrix must outlive the cache; estimators that accept a cache verify it
/// is bound to the matrix they were handed.
class FrameNeighborCache {
 public:
  /// One subspace searcher: a kd-tree over the listed blocks' coordinates,
  /// gathered per sample into a contiguous point.
  struct SubspaceTree {
    /// Owned gathered coordinates; empty when the blocks tile the full row
    /// in listed order, in which case the tree indexes the matrix storage
    /// directly (zero copy).
    std::vector<double> storage;
    /// The query blocks re-based onto the gathered layout, for blocked
    /// (max-over-blocks) distance queries against the tree.
    std::vector<geom::DimBlock> metric;
    /// Gathered point dimension (sum of block widths).
    std::size_t point_dim = 0;
    /// The flat points the tree indexes (storage or the matrix's own rows).
    std::span<const double> points;
    geom::KdTree tree;

    SubspaceTree(std::vector<double> gathered,
                 std::vector<geom::DimBlock> rebased, std::size_t dim,
                 std::span<const double> view)
        : storage(std::move(gathered)),
          metric(std::move(rebased)),
          point_dim(dim),
          points(storage.empty() ? view : std::span<const double>(storage)),
          tree(points, dim) {}

    /// Gathered coordinates of one sample — the query point for
    /// leave-one-out searches. Consecutive samples are contiguous, so a
    /// batch of queries is one subspan.
    [[nodiscard]] std::span<const double> query(std::size_t sample) const {
      return points.subspan(sample * point_dim, point_dim);
    }
  };

  explicit FrameNeighborCache(const SampleMatrix& samples);

  /// The matrix this cache is bound to.
  [[nodiscard]] const SampleMatrix& samples() const noexcept {
    return *samples_;
  }

  /// The searcher for the subspace spanned by `blocks` (in the given
  /// order), built on first use. The returned reference stays valid for the
  /// cache's lifetime. Single-threaded (see file comment).
  [[nodiscard]] const SubspaceTree& tree_for(std::span<const Block> blocks);

  /// Number of distinct subspace trees built so far.
  [[nodiscard]] std::size_t tree_count() const noexcept {
    return entries_.size();
  }

 private:
  struct Entry {
    std::vector<Block> key;
    std::unique_ptr<SubspaceTree> tree;
  };

  const SampleMatrix* samples_;
  std::vector<Entry> entries_;
};

}  // namespace sops::info
