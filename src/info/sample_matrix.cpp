#include "info/sample_matrix.hpp"

#include <algorithm>
#include <cmath>

namespace sops::info {

std::vector<Block> uniform_blocks(std::size_t n, std::size_t block_dim) {
  support::expect(block_dim > 0, "uniform_blocks: block_dim must be positive");
  std::vector<Block> blocks;
  blocks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) blocks.push_back({i * block_dim, block_dim});
  return blocks;
}

void validate_blocks(std::span<const Block> blocks, std::size_t dim) {
  support::expect(!blocks.empty(), "validate_blocks: no blocks");
  std::vector<char> covered(dim, 0);
  std::size_t total = 0;
  for (const Block& b : blocks) {
    support::expect(b.dim > 0, "validate_blocks: empty block");
    support::expect(b.offset + b.dim <= dim, "validate_blocks: block out of range");
    for (std::size_t d = b.offset; d < b.offset + b.dim; ++d) {
      support::expect(!covered[d], "validate_blocks: overlapping blocks");
      covered[d] = 1;
    }
    total += b.dim;
  }
  support::expect(total == dim, "validate_blocks: blocks do not cover all dims");
}

double block_dist_sq(const SampleMatrix& samples, std::size_t a, std::size_t b,
                     const Block& block) noexcept {
  const std::span<const double> ra = samples.row(a);
  const std::span<const double> rb = samples.row(b);
  double sum = 0.0;
  for (std::size_t d = block.offset; d < block.offset + block.dim; ++d) {
    const double diff = ra[d] - rb[d];
    sum += diff * diff;
  }
  return sum;
}

double block_max_dist(const SampleMatrix& samples, std::size_t a, std::size_t b,
                      std::span<const Block> blocks) noexcept {
  double max_sq = 0.0;
  for (const Block& block : blocks) {
    max_sq = std::max(max_sq, block_dist_sq(samples, a, b, block));
  }
  return std::sqrt(max_sq);
}

}  // namespace sops::info
