// Multi-information decomposition over coarse-grained observers (paper
// §3.1, Eqs. 4–5):
//
//   I(W₁,…,W_n) = I(W̃₁,…,W̃_g) + Σ_j I(members of group j)
//
// where each W̃_j is the joint variable of a group of fine observers. The
// identity is exact for the true quantities; for estimates each term is
// computed by its own KSG run, so the residual (total − sum of terms) is an
// estimator-bias diagnostic that the tests bound.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "info/ksg.hpp"

namespace sops::info {

/// A grouping: group[g] lists the indices (into the fine block list) that
/// form coarse observer g. Every fine block must appear in exactly one group.
using ObserverGrouping = std::vector<std::vector<std::size_t>>;

/// The decomposition's terms, all in bits.
struct Decomposition {
  double total = 0.0;             ///< I(W₁,…,W_n)
  double between_groups = 0.0;    ///< I(W̃₁,…,W̃_g)
  std::vector<double> within_group;  ///< I inside each group (0 for singletons)

  /// Sum of between + within terms; equals `total` up to estimator bias.
  [[nodiscard]] double reconstructed() const noexcept {
    double sum = between_groups;
    for (const double w : within_group) sum += w;
    return sum;
  }
};

/// Validates that `grouping` is a partition of {0, …, block_count−1}.
void validate_grouping(const ObserverGrouping& grouping, std::size_t block_count);

/// Computes the Eq. (5) decomposition. Groups of size one contribute zero
/// within-group information by definition. The between-groups term treats
/// each group's concatenated coordinates as one block of the max-metric.
[[nodiscard]] Decomposition decompose_multi_information(
    const SampleMatrix& samples, std::span<const Block> blocks,
    const ObserverGrouping& grouping, const KsgOptions& options = {});

/// Groups per-particle blocks by particle type: group t collects the blocks
/// of all particles with type t (the paper's Fig. 11 coarse-graining).
[[nodiscard]] ObserverGrouping group_blocks_by_type(
    std::span<const std::uint32_t> types, std::size_t type_count);

}  // namespace sops::info
