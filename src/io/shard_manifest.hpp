// Shard manifests — the sidecar that makes a persist-mode FrameStore spill
// resumable and mergeable.
//
// A shard file holds the [frame][sample][particle] payload of one slice of
// an ensemble (sample slots [slot_begin, slot_end) of samples_total); its
// manifest — `<shard>.manifest` next to the data file — records everything
// needed to (a) decide whether a reopened shard matches the experiment
// about to resume into it (dims, frame-step grid, master seed, config
// hash), (b) skip already-finished work (a per-sample completion bitmap,
// flipped only after the sample's bytes are durably on disk), and (c)
// assemble N disjoint shards into one recording (slot ranges + bitmaps are
// validated by the merge).
//
// The format is a fixed-layout little-endian-native binary file: an 8-byte
// magic, eight u64 header fields, the frame-step grid (F u64s), per-sample
// equilibrium steps (slots u64s, kNoEquilibriumStep = criterion never
// held), and the completion bitmap (ceil(slots/64) u64 words). Fixed
// layout is the crash-safety lever: marking a sample complete is a single
// in-place pwrite of its equilibrium entry and bitmap word followed by an
// fdatasync — never a rewrite of the whole file — so a crash at any moment
// leaves a manifest that is valid and merely under-reports completions
// (the resumed run redoes those samples; (seed, stream) determinism makes
// the redo bitwise-identical). Files are not portable across endianness;
// load() validates magic/version/size and throws sops::Error on anything
// inconsistent rather than guessing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace sops::io {

/// Sentinel in ShardManifest::equilibrium_steps: the sample's equilibrium
/// criterion never held during its run.
inline constexpr std::uint64_t kNoEquilibriumStep = ~std::uint64_t{0};

/// In-memory image of one shard manifest. Plain data; the file-side
/// lifecycle (create/load/incremental completion updates) lives in
/// ShardManifestFile.
struct ShardManifest {
  std::uint64_t frames = 0;         ///< F — recorded frames per sample
  std::uint64_t samples_total = 0;  ///< m — ensemble-wide sample count
  std::uint64_t particles = 0;      ///< n
  std::uint64_t slot_begin = 0;     ///< first global sample slot of the shard
  std::uint64_t slot_end = 0;       ///< one past the last slot
  std::uint64_t master_seed = 0;    ///< the experiment's master seed
  std::uint64_t config_hash = 0;    ///< core::experiment_config_hash value
  /// Simulation step of each recorded frame; size frames.
  std::vector<std::uint64_t> frame_steps;
  /// Per-sample equilibrium step (kNoEquilibriumStep = never held); size
  /// slots(). Indexed by local slot (global slot − slot_begin).
  std::vector<std::uint64_t> equilibrium_steps;
  /// Completion bitmap, one bit per local slot, size words_for(slots()).
  std::vector<std::uint64_t> completed;

  /// Samples this shard owns.
  [[nodiscard]] std::size_t slots() const noexcept {
    return static_cast<std::size_t>(slot_end - slot_begin);
  }
  [[nodiscard]] bool is_complete(std::size_t local_slot) const noexcept {
    return (completed[local_slot / 64] >> (local_slot % 64) & 1u) != 0;
  }
  void set_complete(std::size_t local_slot) noexcept {
    completed[local_slot / 64] |= std::uint64_t{1} << (local_slot % 64);
  }
  [[nodiscard]] std::size_t complete_count() const noexcept;
  [[nodiscard]] bool all_complete() const noexcept {
    return complete_count() == slots();
  }

  /// Bitmap words needed for `slots` samples.
  [[nodiscard]] static std::size_t words_for(std::size_t slots) noexcept {
    return (slots + 63) / 64;
  }
  /// On-disk size of this manifest (the merge/bench overhead number).
  [[nodiscard]] std::size_t file_bytes() const noexcept;
};

/// Owns a manifest file across a shard run: created (or reopened) once,
/// then updated in place as samples finish. mark_complete is thread-safe —
/// ensemble sample chunks finish concurrently, and two slots can share one
/// bitmap word.
class ShardManifestFile {
 public:
  ShardManifestFile();
  ~ShardManifestFile();
  ShardManifestFile(ShardManifestFile&&) noexcept;
  ShardManifestFile& operator=(ShardManifestFile&&) noexcept;
  ShardManifestFile(const ShardManifestFile&) = delete;
  ShardManifestFile& operator=(const ShardManifestFile&) = delete;

  /// Writes a fresh manifest at `path` (overwriting an orphaned one — the
  /// data file's O_EXCL is the real clobber guard) and keeps it open for
  /// completion updates. The whole file is fsync'd before returning, so a
  /// crash afterwards can at worst lose completion bits, never the header.
  /// Throws sops::Error on any I/O failure.
  [[nodiscard]] static ShardManifestFile create(const std::string& path,
                                                ShardManifest manifest);

  /// Opens an existing manifest for completion updates, validating it like
  /// load(). Throws sops::Error on a missing, truncated, or corrupt file.
  [[nodiscard]] static ShardManifestFile open(const std::string& path);

  /// Read-only load + validation (magic, version, size arithmetic, slot
  /// range sanity). Throws sops::Error naming what is wrong.
  [[nodiscard]] static ShardManifest load(const std::string& path);

  /// The manifest image, kept in sync with the file.
  [[nodiscard]] const ShardManifest& manifest() const;

  /// Flips the completion bit of `local_slot` (and records its equilibrium
  /// step) in place, then fdatasyncs. The caller must have made the
  /// sample's payload durable first (FrameStore::sync_samples) — the bit is
  /// the commit point of the sample. Thread-safe. Throws sops::Error when
  /// the write or sync fails: a completion that might not be on disk must
  /// not be treated as recorded.
  void mark_complete(std::size_t local_slot,
                     std::optional<std::uint64_t> equilibrium_step);

  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }

 private:
  struct State;
  std::unique_ptr<State> state_;
};

}  // namespace sops::io
