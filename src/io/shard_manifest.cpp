#include "io/shard_manifest.hpp"

#include <cerrno>
#include <cstring>
#include <mutex>
#include <utility>

#include "support/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define SOPS_HAVE_POSIX_IO 1
#include <fcntl.h>
#include <unistd.h>
#else
#define SOPS_HAVE_POSIX_IO 0
#endif

namespace sops::io {
namespace {

// "SOPSHRD" + a format byte: bump the last byte on any layout change so an
// old binary rejects a new manifest (and vice versa) instead of misreading
// fixed offsets.
constexpr char kMagic[8] = {'S', 'O', 'P', 'S', 'H', 'R', 'D', '\x01'};
constexpr std::uint64_t kVersion = 1;
constexpr std::size_t kHeaderFields = 8;  // version..config_hash, u64 each
constexpr std::size_t kHeaderBytes = sizeof(kMagic) + kHeaderFields * 8;

constexpr std::size_t frame_steps_offset() noexcept { return kHeaderBytes; }
std::size_t equilibrium_offset(const ShardManifest& m) noexcept {
  return kHeaderBytes + m.frame_steps.size() * 8;
}
std::size_t bitmap_offset(const ShardManifest& m) noexcept {
  return equilibrium_offset(m) + m.slots() * 8;
}

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw Error("shard manifest '" + path + "': " + what);
}

[[noreturn]] void fail_errno(const std::string& path, const char* operation) {
  fail(path, std::string(operation) + ": " + std::strerror(errno));
}

#if SOPS_HAVE_POSIX_IO

void write_all_at(int fd, const void* data, std::size_t bytes,
                  std::size_t offset, const std::string& path) {
  const char* cursor = static_cast<const char*>(data);
  while (bytes > 0) {
    const ::ssize_t written =
        ::pwrite(fd, cursor, bytes, static_cast<off_t>(offset));
    if (written < 0) {
      if (errno == EINTR) continue;
      fail_errno(path, "pwrite");
    }
    cursor += written;
    offset += static_cast<std::size_t>(written);
    bytes -= static_cast<std::size_t>(written);
  }
}

bool read_all_at(int fd, void* data, std::size_t bytes, std::size_t offset) {
  char* cursor = static_cast<char*>(data);
  while (bytes > 0) {
    const ::ssize_t got = ::pread(fd, cursor, bytes, static_cast<off_t>(offset));
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (got == 0) return false;  // short file
    cursor += got;
    offset += static_cast<std::size_t>(got);
    bytes -= static_cast<std::size_t>(got);
  }
  return true;
}

// RAII fd so validation throws cannot leak descriptors.
struct FdGuard {
  int fd = -1;
  ~FdGuard() {
    if (fd >= 0) ::close(fd);
  }
  int take() noexcept { return std::exchange(fd, -1); }
};

void serialize_header(std::uint64_t (&fields)[kHeaderFields],
                      const ShardManifest& m) noexcept {
  fields[0] = kVersion;
  fields[1] = m.frames;
  fields[2] = m.samples_total;
  fields[3] = m.particles;
  fields[4] = m.slot_begin;
  fields[5] = m.slot_end;
  fields[6] = m.master_seed;
  fields[7] = m.config_hash;
}

// Loads and validates through an already-open descriptor (shared by load()
// and ShardManifestFile::open()).
ShardManifest load_fd(int fd, const std::string& path) {
  char magic[sizeof(kMagic)];
  if (!read_all_at(fd, magic, sizeof(magic), 0)) {
    fail(path, "truncated (no magic)");
  }
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    fail(path, "bad magic (not a shard manifest, or a different format "
               "revision)");
  }
  std::uint64_t fields[kHeaderFields];
  if (!read_all_at(fd, fields, sizeof(fields), sizeof(kMagic))) {
    fail(path, "truncated header");
  }
  if (fields[0] != kVersion) {
    fail(path, "unsupported version " + std::to_string(fields[0]));
  }
  ShardManifest m;
  m.frames = fields[1];
  m.samples_total = fields[2];
  m.particles = fields[3];
  m.slot_begin = fields[4];
  m.slot_end = fields[5];
  m.master_seed = fields[6];
  m.config_hash = fields[7];
  if (m.frames == 0 || m.samples_total == 0 || m.particles == 0) {
    fail(path, "zero dimension in header");
  }
  if (m.slot_begin >= m.slot_end || m.slot_end > m.samples_total) {
    fail(path, "invalid slot range [" + std::to_string(m.slot_begin) + ", " +
                   std::to_string(m.slot_end) + ") of " +
                   std::to_string(m.samples_total) + " samples");
  }
  // Cap the arrays we are about to allocate: a corrupt header must not
  // translate into a multi-terabyte resize.
  constexpr std::uint64_t kSaneLimit = std::uint64_t{1} << 32;
  if (m.frames > kSaneLimit || m.slots() > kSaneLimit) {
    fail(path, "implausible header sizes");
  }
  m.frame_steps.resize(m.frames);
  m.equilibrium_steps.resize(m.slots());
  m.completed.resize(ShardManifest::words_for(m.slots()));
  if (!read_all_at(fd, m.frame_steps.data(), m.frame_steps.size() * 8,
                   frame_steps_offset()) ||
      !read_all_at(fd, m.equilibrium_steps.data(),
                   m.equilibrium_steps.size() * 8, equilibrium_offset(m)) ||
      !read_all_at(fd, m.completed.data(), m.completed.size() * 8,
                   bitmap_offset(m))) {
    fail(path, "truncated body");
  }
  return m;
}

#endif  // SOPS_HAVE_POSIX_IO

}  // namespace

std::size_t ShardManifest::complete_count() const noexcept {
  std::size_t count = 0;
  for (std::size_t s = 0; s < slots(); ++s) {
    if (is_complete(s)) ++count;
  }
  return count;
}

std::size_t ShardManifest::file_bytes() const noexcept {
  return kHeaderBytes + frame_steps.size() * 8 + slots() * 8 +
         words_for(slots()) * 8;
}

struct ShardManifestFile::State {
  int fd = -1;
  std::string path;
  ShardManifest manifest;
  std::mutex mutex;  // serializes mark_complete (slots share bitmap words)

  ~State() {
#if SOPS_HAVE_POSIX_IO
    if (fd >= 0) ::close(fd);
#endif
  }
};

ShardManifestFile::ShardManifestFile() = default;
ShardManifestFile::~ShardManifestFile() = default;
ShardManifestFile::ShardManifestFile(ShardManifestFile&&) noexcept = default;
ShardManifestFile& ShardManifestFile::operator=(ShardManifestFile&&) noexcept =
    default;

const ShardManifest& ShardManifestFile::manifest() const {
  support::expect(state_ != nullptr, "ShardManifestFile: not open");
  return state_->manifest;
}

ShardManifestFile ShardManifestFile::create(const std::string& path,
                                            ShardManifest manifest) {
#if SOPS_HAVE_POSIX_IO
  support::expect(manifest.frame_steps.size() == manifest.frames,
                  "ShardManifestFile: frame_steps size mismatch");
  support::expect(manifest.equilibrium_steps.size() == manifest.slots(),
                  "ShardManifestFile: equilibrium_steps size mismatch");
  support::expect(
      manifest.completed.size() == ShardManifest::words_for(manifest.slots()),
      "ShardManifestFile: bitmap size mismatch");
  FdGuard guard;
  guard.fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0600);
  if (guard.fd < 0) fail_errno(path, "open");
  std::uint64_t fields[kHeaderFields];
  serialize_header(fields, manifest);
  write_all_at(guard.fd, kMagic, sizeof(kMagic), 0, path);
  write_all_at(guard.fd, fields, sizeof(fields), sizeof(kMagic), path);
  write_all_at(guard.fd, manifest.frame_steps.data(),
               manifest.frame_steps.size() * 8, frame_steps_offset(), path);
  write_all_at(guard.fd, manifest.equilibrium_steps.data(),
               manifest.equilibrium_steps.size() * 8,
               equilibrium_offset(manifest), path);
  write_all_at(guard.fd, manifest.completed.data(),
               manifest.completed.size() * 8, bitmap_offset(manifest), path);
  if (::fsync(guard.fd) != 0) fail_errno(path, "fsync");
  ShardManifestFile file;
  file.state_ = std::make_unique<State>();
  file.state_->fd = guard.take();
  file.state_->path = path;
  file.state_->manifest = std::move(manifest);
  return file;
#else
  (void)path;
  (void)manifest;
  throw Error("shard manifests require POSIX I/O");
#endif
}

ShardManifestFile ShardManifestFile::open(const std::string& path) {
#if SOPS_HAVE_POSIX_IO
  FdGuard guard;
  guard.fd = ::open(path.c_str(), O_RDWR | O_CLOEXEC);
  if (guard.fd < 0) fail_errno(path, "open");
  ShardManifest manifest = load_fd(guard.fd, path);
  ShardManifestFile file;
  file.state_ = std::make_unique<State>();
  file.state_->fd = guard.take();
  file.state_->path = path;
  file.state_->manifest = std::move(manifest);
  return file;
#else
  (void)path;
  throw Error("shard manifests require POSIX I/O");
#endif
}

ShardManifest ShardManifestFile::load(const std::string& path) {
#if SOPS_HAVE_POSIX_IO
  FdGuard guard;
  guard.fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (guard.fd < 0) fail_errno(path, "open");
  return load_fd(guard.fd, path);
#else
  (void)path;
  throw Error("shard manifests require POSIX I/O");
#endif
}

void ShardManifestFile::mark_complete(
    std::size_t local_slot, std::optional<std::uint64_t> equilibrium_step) {
  support::expect(state_ != nullptr, "ShardManifestFile: not open");
#if SOPS_HAVE_POSIX_IO
  State& state = *state_;
  support::expect(local_slot < state.manifest.slots(),
                  "ShardManifestFile::mark_complete: slot out of range");
  const std::lock_guard<std::mutex> lock(state.mutex);
  const std::uint64_t equilibrium =
      equilibrium_step.has_value() ? *equilibrium_step : kNoEquilibriumStep;
  state.manifest.equilibrium_steps[local_slot] = equilibrium;
  state.manifest.set_complete(local_slot);
  const std::uint64_t word = state.manifest.completed[local_slot / 64];
  // Equilibrium entry first, completion bit second: a crash between the
  // two leaves the bit clear and the sample is simply redone on resume.
  write_all_at(state.fd, &equilibrium, 8,
               equilibrium_offset(state.manifest) + local_slot * 8, state.path);
  write_all_at(state.fd, &word, 8,
               bitmap_offset(state.manifest) + (local_slot / 64) * 8,
               state.path);
#if defined(__APPLE__)
  if (::fsync(state.fd) != 0) fail_errno(state.path, "fsync");
#else
  if (::fdatasync(state.fd) != 0) fail_errno(state.path, "fdatasync");
#endif
#else
  (void)local_slot;
  (void)equilibrium_step;
  throw Error("shard manifests require POSIX I/O");
#endif
}

}  // namespace sops::io
