#include "io/config.hpp"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <fstream>
#include <sstream>

#include "support/error.hpp"

namespace sops::io {
namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

double parse_double(const std::string& key, const std::string& value) {
  // std::from_chars for doubles is incomplete on some libstdc++ versions for
  // special values; strtod with full-consumption check is portable here.
  // strtod alone is too lenient for experiment files, so this rejects what
  // it would silently accept: trailing garbage, hex floats, "nan", and
  // overflowing magnitudes — each with an error naming the key, since a
  // value that half-parses is almost always a typo in a setup.
  const std::string trimmed = trim(value);
  // Signed, case-insensitive infinity — the spellings strtod accepted
  // before the stricter character filter below existed.
  {
    std::string folded;
    for (const char c : trimmed) {
      folded += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    const bool negative = folded.starts_with("-");
    if (negative || folded.starts_with("+")) folded.erase(0, 1);
    if (folded == "inf" || folded == "infinity") {
      const double infinity = std::numeric_limits<double>::infinity();
      return negative ? -infinity : infinity;
    }
  }
  // No decimal number contains these; they only appear in hex floats
  // ("0x1p3") and "nan", neither of which belongs in a config.
  if (trimmed.empty() ||
      trimmed.find_first_of("xXnN") != std::string::npos) {
    throw Error("config: key '" + key + "' has non-numeric value '" + value +
                "'");
  }
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(trimmed.c_str(), &end);
  if (end != trimmed.c_str() + trimmed.size()) {
    throw Error("config: key '" + key + "' has non-numeric value '" + value +
                "' (trailing characters after the number)");
  }
  if (errno == ERANGE && std::abs(parsed) == HUGE_VAL) {
    // Overflow; underflow-to-zero (also ERANGE) is accepted as 0.
    throw Error("config: key '" + key + "' is out of range: '" + value + "'");
  }
  return parsed;
}

}  // namespace

Config Config::parse(const std::string& text) {
  std::map<std::string, std::string> values;
  std::stringstream stream(text);
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    const auto comment = line.find('#');
    if (comment != std::string::npos) line.erase(comment);
    const std::string trimmed = trim(line);
    if (trimmed.empty()) continue;
    const auto equals = trimmed.find('=');
    if (equals == std::string::npos) {
      throw Error("config: line " + std::to_string(line_number) +
                  " has no '=': '" + trimmed + "'");
    }
    const std::string key = trim(trimmed.substr(0, equals));
    const std::string value = trim(trimmed.substr(equals + 1));
    if (key.empty()) {
      throw Error("config: line " + std::to_string(line_number) +
                  " has an empty key");
    }
    values[key] = value;
  }
  return Config(std::move(values));
}

Config Config::load(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw Error("config: cannot open " + path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  return parse(buffer.str());
}

std::optional<std::string> Config::raw(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_string(const std::string& key,
                               const std::string& fallback) const {
  return raw(key).value_or(fallback);
}

double Config::get_double(const std::string& key, double fallback) const {
  const auto value = raw(key);
  if (!value) return fallback;
  return parse_double(key, *value);
}

std::size_t Config::get_size(const std::string& key, std::size_t fallback) const {
  const auto value = raw(key);
  if (!value) return fallback;
  const double parsed = parse_double(key, *value);
  if (parsed < 0 || parsed != std::floor(parsed)) {
    throw Error("config: key '" + key + "' must be a non-negative integer");
  }
  // 2^64: the smallest double no size_t can represent. Without this check
  // the cast below is undefined for oversized values ("1e30") and for the
  // infinity parse_double lets through for "rc = inf"-style keys.
  if (parsed >= 18446744073709551616.0) {
    throw Error("config: key '" + key + "' is out of range: '" + *value + "'");
  }
  return static_cast<std::size_t>(parsed);
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  const auto value = raw(key);
  if (!value) return fallback;
  if (*value == "true" || *value == "1" || *value == "yes" || *value == "on") {
    return true;
  }
  if (*value == "false" || *value == "0" || *value == "no" ||
      *value == "off") {
    return false;
  }
  throw Error("config: key '" + key + "' must be a boolean, got '" + *value +
              "'");
}

std::vector<double> Config::get_list(const std::string& key) const {
  const auto value = raw(key);
  std::vector<double> out;
  if (!value) return out;
  std::stringstream stream(*value);
  std::string token;
  while (stream >> token) out.push_back(parse_double(key, token));
  return out;
}

std::vector<std::vector<double>> Config::get_matrix(
    const std::string& key) const {
  const auto value = raw(key);
  std::vector<std::vector<double>> out;
  if (!value) return out;
  std::stringstream rows(*value);
  std::string row;
  while (std::getline(rows, row, ';')) {
    std::vector<double> entries;
    std::stringstream stream(row);
    std::string token;
    while (stream >> token) entries.push_back(parse_double(key, token));
    if (!entries.empty()) out.push_back(std::move(entries));
  }
  return out;
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [key, value] : values_) out.push_back(key);
  return out;
}

}  // namespace sops::io
