#include "io/svg.hpp"

#include <array>
#include <fstream>
#include <sstream>

#include "geom/aabb.hpp"
#include "support/error.hpp"

namespace sops::io {
namespace {

constexpr std::array<const char*, 8> kPalette = {
    "#4477aa", "#ee6677", "#228833", "#ccbb44",
    "#66ccee", "#aa3377", "#bbbbbb", "#222222",
};

}  // namespace

std::string render_svg(std::span<const geom::Vec2> points,
                       std::span<const sim::TypeId> types,
                       const SvgOptions& options) {
  support::expect(points.size() == types.size(),
                  "render_svg: points/types size mismatch");
  const double size = options.canvas_size;

  geom::Aabb box = geom::bounding_box(points);
  const double pad =
      points.empty() ? 1.0 : std::max(box.diagonal() * 0.05, 1e-6);
  if (!points.empty()) {
    box.include(box.min - geom::Vec2{pad, pad});
    box.include(box.max + geom::Vec2{pad, pad});
  } else {
    box.include({-1.0, -1.0});
    box.include({1.0, 1.0});
  }
  const double scale = size / std::max(box.width(), box.height());

  std::ostringstream svg;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << size
      << "\" height=\"" << size << "\" viewBox=\"0 0 " << size << ' ' << size
      << "\">\n";
  svg << "  <rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const double x = (points[i].x - box.min.x) * scale;
    // SVG y grows downward; flip to keep the math orientation.
    const double y = size - (points[i].y - box.min.y) * scale;
    const char* color = kPalette[types[i] % kPalette.size()];
    svg << "  <circle cx=\"" << x << "\" cy=\"" << y << "\" r=\""
        << options.particle_radius << "\" fill=\"" << color
        << "\" fill-opacity=\"0.8\" stroke=\"black\" stroke-width=\"0.5\"/>\n";
    if (options.label_types) {
      svg << "  <text x=\"" << x << "\" y=\"" << y + options.particle_radius / 2.5
          << "\" font-size=\"" << options.particle_radius
          << "\" text-anchor=\"middle\" fill=\"white\">" << types[i]
          << "</text>\n";
    }
  }
  svg << "</svg>\n";
  return svg.str();
}

void write_text_file(const std::string& path, const std::string& text) {
  std::ofstream file(path);
  if (!file) throw Error("write_text_file: cannot open " + path);
  file << text;
  if (!file) throw Error("write_text_file: write failed for " + path);
}

}  // namespace sops::io
