#include "io/frame_protocol.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "support/error.hpp"

namespace sops::io {
namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

void write_all(int fd, const void* data, std::size_t size) {
  const char* cursor = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t wrote = ::write(fd, cursor, size);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      throw_errno("frame_protocol: write failed");
    }
    cursor += wrote;
    size -= static_cast<std::size_t>(wrote);
  }
}

/// Reads exactly `size` bytes. Returns false on EOF before the first byte;
/// EOF mid-read throws (a truncated frame is corruption, not shutdown).
bool read_all(int fd, void* data, std::size_t size) {
  char* cursor = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < size) {
    const ssize_t read = ::read(fd, cursor + got, size - got);
    if (read < 0) {
      if (errno == EINTR) continue;
      throw_errno("frame_protocol: read failed");
    }
    if (read == 0) {
      if (got == 0) return false;
      throw Error("frame_protocol: peer closed mid-frame");
    }
    got += static_cast<std::size_t>(read);
  }
  return true;
}

sockaddr_un unix_address(const std::string& path) {
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(address.sun_path)) {
    throw Error("frame_protocol: socket path too long (max " +
                std::to_string(sizeof(address.sun_path) - 1) +
                " bytes): " + path);
  }
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
  return address;
}

}  // namespace

const char* to_string(FrameType type) noexcept {
  switch (type) {
    case FrameType::kSubmit: return "submit";
    case FrameType::kStatus: return "status";
    case FrameType::kCancel: return "cancel";
    case FrameType::kWatch: return "watch";
    case FrameType::kSubmitted: return "submitted";
    case FrameType::kStatusReport: return "status_report";
    case FrameType::kError: return "error";
    case FrameType::kJobEvent: return "job_event";
    case FrameType::kSampleCsv: return "sample_csv";
    case FrameType::kCurveCsv: return "curve_csv";
    case FrameType::kJobDone: return "job_done";
  }
  return "unknown";
}

void write_frame(int fd, FrameType type, std::string_view payload) {
  if (payload.size() > kMaxFramePayload) {
    throw Error("frame_protocol: payload of " +
                std::to_string(payload.size()) + " bytes exceeds the frame cap");
  }
  const std::uint32_t length = static_cast<std::uint32_t>(payload.size());
  unsigned char header[5] = {
      static_cast<unsigned char>(length & 0xff),
      static_cast<unsigned char>((length >> 8) & 0xff),
      static_cast<unsigned char>((length >> 16) & 0xff),
      static_cast<unsigned char>((length >> 24) & 0xff),
      static_cast<unsigned char>(type),
  };
  write_all(fd, header, sizeof header);
  if (!payload.empty()) write_all(fd, payload.data(), payload.size());
}

std::optional<Frame> read_frame(int fd) {
  unsigned char header[5];
  if (!read_all(fd, header, sizeof header)) return std::nullopt;
  const std::uint32_t length =
      static_cast<std::uint32_t>(header[0]) |
      (static_cast<std::uint32_t>(header[1]) << 8) |
      (static_cast<std::uint32_t>(header[2]) << 16) |
      (static_cast<std::uint32_t>(header[3]) << 24);
  if (length > kMaxFramePayload) {
    throw Error("frame_protocol: frame length " + std::to_string(length) +
                " exceeds the cap — corrupt stream?");
  }
  Frame frame;
  frame.type = static_cast<FrameType>(header[4]);
  frame.payload.resize(length);
  if (length > 0 && !read_all(fd, frame.payload.data(), length)) {
    throw Error("frame_protocol: peer closed mid-frame");
  }
  return frame;
}

int listen_unix(const std::string& path, int backlog) {
  const sockaddr_un address = unix_address(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("frame_protocol: socket() failed");
  // A stale socket file from a dead daemon blocks bind(); removing it is
  // safe because a live daemon would still hold the listening fd.
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&address),
             sizeof address) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("frame_protocol: bind(" + path + ") failed");
  }
  if (::listen(fd, backlog) != 0) {
    const int saved = errno;
    ::close(fd);
    ::unlink(path.c_str());
    errno = saved;
    throw_errno("frame_protocol: listen(" + path + ") failed");
  }
  return fd;
}

int connect_unix(const std::string& path) {
  const sockaddr_un address = unix_address(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("frame_protocol: socket() failed");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                sizeof address) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("frame_protocol: connect(" + path + ") failed");
  }
  return fd;
}

}  // namespace sops::io
