// The wire protocol between the `sopsd` experiment daemon and its clients.
//
// Local-only by design: a SOCK_STREAM AF_UNIX socket (filesystem
// permissions are the access control) carrying length-prefixed frames —
//
//   [4-byte little-endian payload length][1-byte frame type][payload]
//
// — the smallest framing that survives a byte stream. Payloads are text:
// a submit carries the same key=value config file `sops_run` reads, ids
// travel as ASCII decimals, statuses as the one-line JSON
// core::job_status_json emits, and streamed results as the exact CSV bytes
// the batch path writes (core::sample_recording_csv / write_csv on
// analysis_csv_table) — which is what makes "streamed output equals batch
// output" a byte comparison instead of a parsing argument.
//
// Client → server frame types, and their replies:
//
//   kSubmit  config text            → kSubmitted (id) | kError
//   kStatus  id, or empty for all   → kStatusReport (JSON lines) | kError
//   kCancel  id                     → kStatusReport | kError
//   kWatch   id                     → a stream: kJobEvent on every state
//            change, kSampleCsv per finished sample, kCurveCsv once the
//            analysis is in, terminated by kJobDone (terminal status) —
//            then the server closes the connection.
//
// One request per connection (kWatch holds it open for the stream); clients
// reconnect per command. Framing errors and oversized lengths throw
// sops::Error — a local protocol mismatch is a bug, not a condition to
// limp through.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace sops::io {

enum class FrameType : std::uint8_t {
  // client → server
  kSubmit = 1,
  kStatus = 2,
  kCancel = 3,
  kWatch = 4,
  // server → client
  kSubmitted = 10,
  kStatusReport = 11,
  kError = 12,
  kJobEvent = 13,
  kSampleCsv = 14,
  kCurveCsv = 15,
  kJobDone = 16,
};

[[nodiscard]] const char* to_string(FrameType type) noexcept;

struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

/// Upper bound a reader accepts for one payload. Generous next to any real
/// frame (the largest are whole-sample CSV dumps), tight enough that a
/// corrupted length prefix fails loudly instead of allocating garbage.
inline constexpr std::size_t kMaxFramePayload = std::size_t{256} << 20;

/// Writes one frame, handling short writes and EINTR. Throws sops::Error
/// on any I/O failure (including a peer that hung up mid-frame).
void write_frame(int fd, FrameType type, std::string_view payload);

/// Reads one frame. Returns nullopt on clean EOF at a frame boundary;
/// throws sops::Error on truncated frames, I/O errors, or a length prefix
/// beyond kMaxFramePayload.
[[nodiscard]] std::optional<Frame> read_frame(int fd);

/// Creates, binds, and listens on an AF_UNIX stream socket at `path`
/// (unlinking a stale socket file first). Returns the listening fd; throws
/// sops::Error with the errno text on failure.
[[nodiscard]] int listen_unix(const std::string& path, int backlog = 8);

/// Connects to the AF_UNIX stream socket at `path`. Returns the connected
/// fd; throws sops::Error (e.g. when no daemon is listening).
[[nodiscard]] int connect_unix(const std::string& path);

}  // namespace sops::io
