// RAII memory-mapped scratch buffers — the disk backing of spilled
// FrameStores.
//
// A MappedBuffer owns one file-backed, shared, read-write mapping created
// at full size upfront (ftruncate + mmap): callers that know their total
// payload before the first write — the recording grid F·m·n is fixed
// before a simulation step runs — get a flat byte block whose pages the
// kernel can write back and evict instead of anonymous memory it cannot.
// flush()/release() expose the msync/madvise hooks the spill path uses to
// push finished extents to disk and drop them from the process's resident
// set while producers keep writing other extents.
//
// Mapping is an optimization, never a correctness requirement: on any
// failure (unwritable directory, exhausted descriptors, a platform without
// mmap) the buffer falls back to zero-initialized heap storage, records the
// reason, and every operation keeps working — flush/release just become
// no-ops. Callers branch on mapped() only for reporting.
//
// Two lifetimes: the default scratch buffer unlinks its file on destroy
// (spill data dies with the store), while a persist buffer keeps the file —
// synced with msync(MS_SYNC) on clean close — so a recording shard survives
// the process and can be reopened later (open_existing, size-validated).
// Persist is the backing of crash-safe shard recordings (core::FrameStore
// shard mode); for those durability *is* a correctness requirement, so the
// caller turns a fallback into an error instead of accepting heap.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sops::io {

/// One file-backed (or heap-fallback) byte buffer of fixed size.
class MappedBuffer {
 public:
  /// On mapping failure: allocate zeroed heap storage of the same size
  /// (kHeapFallback, the default — the buffer always works), or stay empty
  /// (kEmpty — for callers that own their own fallback storage and must
  /// not pay a discarded full-payload allocation).
  enum class OnFailure { kHeapFallback, kEmpty };

  /// What happens to the backing file when the buffer is destroyed:
  /// scratch is unlinked (spill data dies with the store), persist is kept
  /// and synced (msync MS_SYNC) so the bytes are durable on disk.
  enum class Lifetime { kScratch, kPersist };

  MappedBuffer() = default;
  /// Creates `path` (O_EXCL — never clobbers an existing file) at `bytes`
  /// and maps it shared read-write with its blocks reserved upfront. The
  /// content starts zeroed in either backing (fresh file pages and
  /// value-initialized heap both read as zero). `bytes` must be positive.
  /// On any mapping failure `on_failure` decides the backing; see
  /// fallback_reason().
  MappedBuffer(const std::string& path, std::size_t bytes,
               OnFailure on_failure = OnFailure::kHeapFallback,
               Lifetime lifetime = Lifetime::kScratch);
  /// Reopens an existing file (no O_EXCL, no truncate) and maps it shared
  /// read-write. The file's size must be exactly `bytes` — a mismatch is a
  /// failure (recorded in fallback_reason()), because a resumed shard whose
  /// payload geometry changed would silently read garbage. The buffer is
  /// always Lifetime::kPersist: reopening only makes sense for files meant
  /// to outlive their writers.
  [[nodiscard]] static MappedBuffer open_existing(
      const std::string& path, std::size_t bytes,
      OnFailure on_failure = OnFailure::kEmpty);
  /// Scratch: unmaps, closes, and removes the backing file (nothing should
  /// outlive the buffer). A killed process leaks its file — callers embed a
  /// timestamp in the name (see FrameStore) so a later run never collides
  /// with a leaked one, and sweep stale leaks at the next store creation.
  /// Persist: syncs dirty pages to disk (MS_SYNC) and keeps the file.
  ~MappedBuffer();

  MappedBuffer(MappedBuffer&& other) noexcept;
  MappedBuffer& operator=(MappedBuffer&& other) noexcept;
  MappedBuffer(const MappedBuffer&) = delete;
  MappedBuffer& operator=(const MappedBuffer&) = delete;

  [[nodiscard]] void* data() noexcept { return data_; }
  [[nodiscard]] const void* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// True when the buffer is file-backed; false for the heap fallback (and
  /// for a default-constructed empty buffer).
  [[nodiscard]] bool mapped() const noexcept { return mapped_; }
  /// Whether the backing file survives destruction (kPersist) or is scratch.
  [[nodiscard]] Lifetime lifetime() const noexcept { return lifetime_; }
  /// Path of the backing file; empty unless mapped().
  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  /// Why the mapping fell back to heap; empty when mapped() or empty().
  [[nodiscard]] const std::string& fallback_reason() const noexcept {
    return fallback_reason_;
  }

  /// Schedules writeback of the pages covering [offset, offset + length)
  /// to the backing file (msync MS_ASYNC — spill data is scratch, so no
  /// caller needs a durability barrier and flushing must not stall
  /// simulation workers on disk; the range is rounded outward to page
  /// boundaries, which is safe even next to extents other threads still
  /// write). No-op on the heap fallback. Returns false when the msync
  /// itself failed.
  bool flush(std::size_t offset, std::size_t length) noexcept;

  /// Durable variant of flush(): msync(MS_SYNC) blocks until the pages
  /// covering [offset, offset + length) are on disk. This is the barrier a
  /// persist shard needs before marking a sample complete in its manifest —
  /// the completion bit must never be set while the sample's bytes are only
  /// in the page cache. Returns true on the heap fallback (nothing to
  /// sync), false when the msync failed.
  bool sync(std::size_t offset, std::size_t length) noexcept;

  /// Drops the pages *fully inside* [offset, offset + length) from this
  /// process's resident set (madvise MADV_DONTNEED; rounded inward so
  /// boundary pages shared with neighboring extents are never touched).
  /// On a shared file mapping the data survives — in the page cache or the
  /// file — and faults back in on the next access; this is what turns the
  /// mapping into an actual RSS reduction. No-op on the heap fallback.
  bool release(std::size_t offset, std::size_t length) noexcept;

  /// Hints the kernel that the buffer will be read front to back (the
  /// analyzer's access pattern over a recorded store). No-op on fallback.
  void advise_sequential() noexcept;

 private:
  void reset() noexcept;

  std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  int fd_ = -1;
  bool mapped_ = false;
  Lifetime lifetime_ = Lifetime::kScratch;
  std::string path_;
  std::string fallback_reason_;
  std::vector<std::byte> heap_;  // fallback storage; empty while mapped
};

}  // namespace sops::io
