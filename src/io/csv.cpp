#include "io/csv.hpp"

#include <charconv>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "support/error.hpp"

namespace sops::io {

void CsvTable::add_row(std::vector<double> row) {
  support::expect(row.size() == header.size(), "CsvTable: row width mismatch");
  rows.push_back(std::move(row));
}

std::size_t CsvTable::column(const std::string& name) const {
  for (std::size_t c = 0; c < header.size(); ++c) {
    if (header[c] == name) return c;
  }
  throw Error("CsvTable: no column named '" + name + "'");
}

void write_csv(std::ostream& os, const CsvTable& table) {
  for (std::size_t c = 0; c < table.header.size(); ++c) {
    if (c) os << ',';
    os << table.header[c];
  }
  os << '\n';
  os << std::setprecision(17);
  for (const auto& row : table.rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  }
}

void write_csv_file(const std::string& path, const CsvTable& table) {
  std::ofstream file(path);
  if (!file) throw Error("write_csv_file: cannot open " + path);
  write_csv(file, table);
  if (!file) throw Error("write_csv_file: write failed for " + path);
}

CsvTable read_csv(std::istream& is) {
  CsvTable table;
  std::string line;
  if (!std::getline(is, line)) throw Error("read_csv: empty input");
  std::stringstream header_stream(line);
  std::string cell;
  while (std::getline(header_stream, cell, ',')) table.header.push_back(cell);

  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::vector<double> row;
    std::stringstream row_stream(line);
    while (std::getline(row_stream, cell, ',')) {
      double value = 0.0;
      const auto* begin = cell.data();
      const auto* end = cell.data() + cell.size();
      const auto [ptr, ec] = std::from_chars(begin, end, value);
      if (ec != std::errc{} || ptr != end) {
        throw Error("read_csv: non-numeric cell '" + cell + "'");
      }
      row.push_back(value);
    }
    if (row.size() != table.header.size()) {
      throw Error("read_csv: ragged row");
    }
    table.rows.push_back(std::move(row));
  }
  return table;
}

}  // namespace sops::io
