// SVG rendering of particle configurations — the publication-quality
// counterpart of the ASCII scatter, used by the gallery example and the
// figure benches to dump inspectable snapshots.
#pragma once

#include <span>
#include <string>

#include "geom/vec2.hpp"
#include "sim/particle_system.hpp"

namespace sops::io {

/// SVG options.
struct SvgOptions {
  double canvas_size = 480.0;   ///< square canvas side in px
  double particle_radius = 4.0; ///< marker radius in px
  bool label_types = true;      ///< print the type digit inside each marker
};

/// Renders one configuration as a standalone SVG document. Each type gets a
/// distinct fill color (cycled from a fixed palette).
[[nodiscard]] std::string render_svg(std::span<const geom::Vec2> points,
                                     std::span<const sim::TypeId> types,
                                     const SvgOptions& options = {});

/// Writes `svg` to a file; throws sops::Error on failure.
void write_text_file(const std::string& path, const std::string& text);

}  // namespace sops::io
