// Terminal rendering of the paper's figures: multi-series line charts
// (multi-information vs time) and scatter plots (particle configurations).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "geom/vec2.hpp"
#include "sim/particle_system.hpp"

namespace sops::io {

/// One named series of a line chart.
struct Series {
  std::string label;
  std::vector<double> x;
  std::vector<double> y;
};

/// Line-chart options.
struct ChartOptions {
  std::size_t width = 72;    ///< plot columns (excluding the axis gutter)
  std::size_t height = 20;   ///< plot rows
  std::string x_label = "t";
  std::string y_label;
  bool y_from_zero = true;   ///< anchor the y range at zero (paper style)
};

/// Renders series as an ASCII chart with a legend; each series is drawn with
/// its own glyph (1-9, a-z). NaN y-values are skipped.
[[nodiscard]] std::string render_chart(std::span<const Series> series,
                                       const ChartOptions& options = {});

/// Scatter-plot options.
struct ScatterOptions {
  std::size_t width = 60;
  std::size_t height = 28;
  bool show_axes = true;
};

/// Renders a particle configuration; each particle prints its type digit
/// (types ≥ 10 wrap to letters), matching the paper's figure style.
[[nodiscard]] std::string render_scatter(std::span<const geom::Vec2> points,
                                         std::span<const sim::TypeId> types,
                                         const ScatterOptions& options = {});

}  // namespace sops::io
