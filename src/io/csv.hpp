// Minimal CSV table writing/reading for experiment outputs.
//
// The bench harnesses emit every figure's series as CSV next to the ASCII
// chart so results can be re-plotted externally; the reader exists so tests
// can round-trip and tools can post-process.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace sops::io {

/// A rectangular table of doubles with named columns.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<double>> rows;

  /// Appends a row; must match the header width.
  void add_row(std::vector<double> row);

  /// Column index by name; throws if absent.
  [[nodiscard]] std::size_t column(const std::string& name) const;
};

/// Writes the table as RFC-4180-style CSV (numeric cells, max precision).
void write_csv(std::ostream& os, const CsvTable& table);

/// Writes to a file path; throws sops::Error on I/O failure.
void write_csv_file(const std::string& path, const CsvTable& table);

/// Parses a CSV of doubles with a header row. Throws on ragged rows or
/// non-numeric cells.
[[nodiscard]] CsvTable read_csv(std::istream& is);

}  // namespace sops::io
