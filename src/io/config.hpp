// Minimal key=value configuration files for the experiment CLI.
//
// Format: one `key = value` per line; `#` starts a comment; blank lines
// ignored; keys are case-sensitive; later duplicates override earlier ones.
// Values keep internal whitespace (lists are whitespace-separated, matrix
// rows are separated by ';').
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace sops::io {

/// A parsed configuration: flat string map plus typed accessors.
class Config {
 public:
  Config() = default;
  explicit Config(std::map<std::string, std::string> values)
      : values_(std::move(values)) {}

  /// Parses from text; throws sops::Error on malformed lines.
  static Config parse(const std::string& text);
  /// Reads and parses a file; throws sops::Error on I/O failure.
  static Config load(const std::string& path);

  [[nodiscard]] bool has(const std::string& key) const {
    return values_.contains(key);
  }
  /// Raw value or nullopt.
  [[nodiscard]] std::optional<std::string> raw(const std::string& key) const;

  /// Typed getters with defaults; throw sops::Error when present but
  /// unparseable (silent fallback would hide typos in experiment setups).
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] std::size_t get_size(const std::string& key,
                                     std::size_t fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  /// Whitespace-separated list of doubles (empty if absent).
  [[nodiscard]] std::vector<double> get_list(const std::string& key) const;
  /// Matrix: rows separated by ';', entries by whitespace. Empty if absent.
  [[nodiscard]] std::vector<std::vector<double>> get_matrix(
      const std::string& key) const;

  /// All keys (for unknown-key warnings in the CLI).
  [[nodiscard]] std::vector<std::string> keys() const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace sops::io
