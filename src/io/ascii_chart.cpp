#include "io/ascii_chart.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "geom/aabb.hpp"
#include "support/error.hpp"

namespace sops::io {
namespace {

char series_glyph(std::size_t index) {
  constexpr char kGlyphs[] = "123456789abcdefghijklmnopqrstuvwxyz";
  return kGlyphs[index % (sizeof(kGlyphs) - 1)];
}

char type_glyph(sim::TypeId type) {
  if (type < 10) return static_cast<char>('0' + type);
  return static_cast<char>('a' + (type - 10) % 26);
}

}  // namespace

std::string render_chart(std::span<const Series> series,
                         const ChartOptions& options) {
  support::expect(!series.empty(), "render_chart: no series");
  support::expect(options.width >= 8 && options.height >= 4,
                  "render_chart: canvas too small");

  double x_min = std::numeric_limits<double>::infinity();
  double x_max = -x_min;
  double y_min = options.y_from_zero ? 0.0 : std::numeric_limits<double>::infinity();
  double y_max = -std::numeric_limits<double>::infinity();
  bool any_point = false;
  for (const Series& s : series) {
    support::expect(s.x.size() == s.y.size(), "render_chart: x/y size mismatch");
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      if (std::isnan(s.y[i])) continue;
      any_point = true;
      x_min = std::min(x_min, s.x[i]);
      x_max = std::max(x_max, s.x[i]);
      y_min = std::min(y_min, s.y[i]);
      y_max = std::max(y_max, s.y[i]);
    }
  }
  support::expect(any_point, "render_chart: all values NaN/empty");
  if (x_max == x_min) x_max = x_min + 1.0;
  if (y_max == y_min) y_max = y_min + 1.0;

  std::vector<std::string> canvas(options.height,
                                  std::string(options.width, ' '));
  for (std::size_t si = 0; si < series.size(); ++si) {
    const Series& s = series[si];
    const char glyph = series_glyph(si);
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      if (std::isnan(s.y[i])) continue;
      const double fx = (s.x[i] - x_min) / (x_max - x_min);
      const double fy = (s.y[i] - y_min) / (y_max - y_min);
      const auto col = static_cast<std::size_t>(
          std::round(fx * static_cast<double>(options.width - 1)));
      const auto row = static_cast<std::size_t>(
          std::round((1.0 - fy) * static_cast<double>(options.height - 1)));
      canvas[row][col] = glyph;
    }
  }

  std::ostringstream out;
  if (!options.y_label.empty()) out << options.y_label << '\n';
  char label[32];
  for (std::size_t row = 0; row < options.height; ++row) {
    const double y = y_max - (y_max - y_min) * static_cast<double>(row) /
                                 static_cast<double>(options.height - 1);
    std::snprintf(label, sizeof(label), "%8.2f |", y);
    out << label << canvas[row] << '\n';
  }
  out << std::string(9, ' ') << '+' << std::string(options.width, '-') << '\n';
  std::snprintf(label, sizeof(label), "%10.6g", x_min);
  out << label << std::string(options.width > 20 ? options.width - 12 : 1, ' ');
  std::snprintf(label, sizeof(label), "%-10.6g", x_max);
  out << label << "  [" << options.x_label << "]\n";
  for (std::size_t si = 0; si < series.size(); ++si) {
    out << "  " << series_glyph(si) << " = " << series[si].label << '\n';
  }
  return out.str();
}

std::string render_scatter(std::span<const geom::Vec2> points,
                           std::span<const sim::TypeId> types,
                           const ScatterOptions& options) {
  support::expect(points.size() == types.size(),
                  "render_scatter: points/types size mismatch");
  support::expect(options.width >= 4 && options.height >= 4,
                  "render_scatter: canvas too small");
  if (points.empty()) return "(empty configuration)\n";

  geom::Aabb box = geom::bounding_box(points);
  // Pad so border particles are visible and degenerate boxes render.
  const double pad = std::max(box.diagonal() * 0.05, 1e-6);
  box.include(box.min - geom::Vec2{pad, pad});
  box.include(box.max + geom::Vec2{pad, pad});

  std::vector<std::string> canvas(options.height,
                                  std::string(options.width, ' '));
  for (std::size_t i = 0; i < points.size(); ++i) {
    const double fx = (points[i].x - box.min.x) / box.width();
    const double fy = (points[i].y - box.min.y) / box.height();
    const auto col = static_cast<std::size_t>(
        std::round(fx * static_cast<double>(options.width - 1)));
    const auto row = static_cast<std::size_t>(
        std::round((1.0 - fy) * static_cast<double>(options.height - 1)));
    canvas[row][col] = type_glyph(types[i]);
  }

  std::ostringstream out;
  if (options.show_axes) {
    out << '+' << std::string(options.width, '-') << "+\n";
    for (const std::string& line : canvas) out << '|' << line << "|\n";
    out << '+' << std::string(options.width, '-') << "+\n";
  } else {
    for (const std::string& line : canvas) out << line << '\n';
  }
  return out.str();
}

}  // namespace sops::io
