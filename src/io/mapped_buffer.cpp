#include "io/mapped_buffer.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "support/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define SOPS_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define SOPS_HAVE_MMAP 0
#endif

namespace sops::io {
namespace {

#if SOPS_HAVE_MMAP
std::size_t page_size() noexcept {
  static const std::size_t size = [] {
    const long reported = ::sysconf(_SC_PAGESIZE);
    return reported > 0 ? static_cast<std::size_t>(reported)
                        : std::size_t{4096};
  }();
  return size;
}
#endif

std::string errno_message(const char* operation) {
  return std::string(operation) + ": " + std::strerror(errno);
}

#if SOPS_HAVE_MMAP
// Reserves the file's blocks so a full filesystem fails here (clean heap
// fallback) instead of SIGBUS-ing the first write to an unbackable page.
// Returns 0 on success, an errno otherwise. macOS has no posix_fallocate;
// its best-effort F_PREALLOCATE is not a guarantee, so the sparse-file
// risk is accepted there.
int reserve_blocks(int fd, std::size_t bytes) {
#if defined(__APPLE__)
  (void)fd;
  (void)bytes;
  return 0;
#else
  return ::posix_fallocate(fd, 0, static_cast<off_t>(bytes));
#endif
}
#endif

}  // namespace

MappedBuffer::MappedBuffer(const std::string& path, std::size_t bytes,
                           OnFailure on_failure, Lifetime lifetime) {
  support::expect(bytes > 0, "MappedBuffer: size must be positive");
  support::expect(!path.empty(), "MappedBuffer: path must be non-empty");
  size_ = bytes;
  lifetime_ = lifetime;
#if SOPS_HAVE_MMAP
  // O_EXCL: a spill file is private scratch — colliding with an existing
  // path means two stores picked the same name, and silently truncating the
  // other one would corrupt a live recording. Callers pick unique names.
  // Persist shards rely on the same guarantee: an existing shard file must
  // be opened via open_existing (resume), never clobbered by a fresh run.
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_EXCL | O_CLOEXEC, 0600);
  if (fd_ < 0) {
    fallback_reason_ = errno_message("open");
  } else if (::ftruncate(fd_, static_cast<off_t>(bytes)) != 0) {
    fallback_reason_ = errno_message("ftruncate");
  } else if (const int alloc_errno = reserve_blocks(fd_, bytes);
             alloc_errno != 0) {
    errno = alloc_errno;
    fallback_reason_ = errno_message("posix_fallocate");
  } else {
    void* mapping = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED,
                           fd_, 0);
    if (mapping == MAP_FAILED) {
      fallback_reason_ = errno_message("mmap");
    } else {
      data_ = static_cast<std::byte*>(mapping);
      mapped_ = true;
      path_ = path;
      return;
    }
  }
  if (fd_ >= 0) {
    ::close(fd_);
    ::unlink(path.c_str());
    fd_ = -1;
  }
#else
  fallback_reason_ = "mmap unavailable on this platform";
#endif
  lifetime_ = Lifetime::kScratch;  // nothing mapped, nothing to persist
  if (on_failure == OnFailure::kEmpty) {
    size_ = 0;
    return;
  }
  heap_.resize(bytes);  // zero-initialized, matching fresh file pages
  data_ = heap_.data();
}

MappedBuffer MappedBuffer::open_existing(const std::string& path,
                                         std::size_t bytes,
                                         OnFailure on_failure) {
  support::expect(bytes > 0, "MappedBuffer: size must be positive");
  support::expect(!path.empty(), "MappedBuffer: path must be non-empty");
  MappedBuffer buffer;
  buffer.size_ = bytes;
  buffer.lifetime_ = Lifetime::kPersist;
#if SOPS_HAVE_MMAP
  buffer.fd_ = ::open(path.c_str(), O_RDWR | O_CLOEXEC);
  if (buffer.fd_ < 0) {
    buffer.fallback_reason_ = errno_message("open");
  } else {
    struct ::stat info {};
    if (::fstat(buffer.fd_, &info) != 0) {
      buffer.fallback_reason_ = errno_message("fstat");
    } else if (info.st_size < 0 ||
               static_cast<std::size_t>(info.st_size) != bytes) {
      // Validate before mapping: a shard file of the wrong geometry would
      // read as silent garbage (or SIGBUS past a short file).
      buffer.fallback_reason_ =
          "size mismatch: file has " + std::to_string(info.st_size) +
          " bytes, expected " + std::to_string(bytes);
    } else {
      void* mapping = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                             MAP_SHARED, buffer.fd_, 0);
      if (mapping == MAP_FAILED) {
        buffer.fallback_reason_ = errno_message("mmap");
      } else {
        buffer.data_ = static_cast<std::byte*>(mapping);
        buffer.mapped_ = true;
        buffer.path_ = path;
        return buffer;
      }
    }
    // Failure never unlinks here: the file is someone's durable data.
    ::close(buffer.fd_);
    buffer.fd_ = -1;
  }
#else
  buffer.fallback_reason_ = "mmap unavailable on this platform";
#endif
  buffer.lifetime_ = Lifetime::kScratch;
  if (on_failure == OnFailure::kEmpty) {
    buffer.size_ = 0;
    return buffer;
  }
  buffer.heap_.resize(bytes);
  buffer.data_ = buffer.heap_.data();
  return buffer;
}

MappedBuffer::~MappedBuffer() { reset(); }

MappedBuffer::MappedBuffer(MappedBuffer&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      fd_(std::exchange(other.fd_, -1)),
      mapped_(std::exchange(other.mapped_, false)),
      lifetime_(std::exchange(other.lifetime_, Lifetime::kScratch)),
      path_(std::move(other.path_)),
      fallback_reason_(std::move(other.fallback_reason_)),
      heap_(std::move(other.heap_)) {
  other.path_.clear();
  other.fallback_reason_.clear();
}

MappedBuffer& MappedBuffer::operator=(MappedBuffer&& other) noexcept {
  if (this != &other) {
    reset();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    fd_ = std::exchange(other.fd_, -1);
    mapped_ = std::exchange(other.mapped_, false);
    lifetime_ = std::exchange(other.lifetime_, Lifetime::kScratch);
    path_ = std::move(other.path_);
    fallback_reason_ = std::move(other.fallback_reason_);
    heap_ = std::move(other.heap_);
    other.path_.clear();
    other.fallback_reason_.clear();
  }
  return *this;
}

void MappedBuffer::reset() noexcept {
#if SOPS_HAVE_MMAP
  const bool persist = lifetime_ == Lifetime::kPersist;
  if (mapped_ && data_ != nullptr) {
    // Persist: a clean close is the shard's durability point — everything
    // still dirty goes to disk before the mapping disappears. (Samples
    // marked complete in a manifest were already MS_SYNC'd individually;
    // this covers partially-written extents so a resumed open reads a
    // consistent file, not a mix of disk and lost page cache.)
    if (persist) ::msync(data_, size_, MS_SYNC);
    ::munmap(data_, size_);
  }
  if (fd_ >= 0) ::close(fd_);
  if (!path_.empty() && !persist) ::unlink(path_.c_str());
#endif
  data_ = nullptr;
  size_ = 0;
  fd_ = -1;
  mapped_ = false;
  lifetime_ = Lifetime::kScratch;
  path_.clear();
  fallback_reason_.clear();
  heap_.clear();
}

bool MappedBuffer::flush(std::size_t offset, std::size_t length) noexcept {
#if SOPS_HAVE_MMAP
  if (!mapped_ || length == 0) return true;
  if (offset >= size_) return true;
  length = std::min(length, size_ - offset);
  const std::size_t page = page_size();
  const std::size_t begin = (offset / page) * page;
  const std::size_t end = offset + length;
  // MS_ASYNC: schedule writeback without blocking the caller — spill data
  // is scratch (no durability contract), and callers flush from simulation
  // workers where a synchronous disk stall per sample would serialize the
  // run on I/O. Dirty pages stay safe in the page cache either way.
  return ::msync(data_ + begin, end - begin, MS_ASYNC) == 0;
#else
  (void)offset;
  (void)length;
  return true;
#endif
}

bool MappedBuffer::sync(std::size_t offset, std::size_t length) noexcept {
#if SOPS_HAVE_MMAP
  if (!mapped_ || length == 0) return true;
  if (offset >= size_) return true;
  length = std::min(length, size_ - offset);
  const std::size_t page = page_size();
  const std::size_t begin = (offset / page) * page;
  const std::size_t end = offset + length;
  // MS_SYNC: block until the range is on disk. Only the shard-completion
  // path pays this — a sample's bytes must be durable before its manifest
  // bit flips — and it pays per finished sample, not per step, so the
  // stall never sits on the simulation hot loop.
  return ::msync(data_ + begin, end - begin, MS_SYNC) == 0;
#else
  (void)offset;
  (void)length;
  return true;
#endif
}

bool MappedBuffer::release(std::size_t offset, std::size_t length) noexcept {
#if SOPS_HAVE_MMAP
  if (!mapped_ || length == 0) return true;
  if (offset >= size_) return true;
  length = std::min(length, size_ - offset);
  const std::size_t page = page_size();
  const std::size_t begin = ((offset + page - 1) / page) * page;
  const std::size_t end = ((offset + length) / page) * page;
  if (begin >= end) return true;  // extent smaller than one whole page
  return ::madvise(data_ + begin, end - begin, MADV_DONTNEED) == 0;
#else
  (void)offset;
  (void)length;
  return true;
#endif
}

void MappedBuffer::advise_sequential() noexcept {
#if SOPS_HAVE_MMAP
  if (mapped_ && size_ > 0) ::madvise(data_, size_, MADV_SEQUENTIAL);
#endif
}

}  // namespace sops::io
