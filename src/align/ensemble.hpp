// Ensemble reduction to shape space (paper §5.2).
//
// Input: m sampled configurations of the same collective at one time step.
// Output: an m×2n SampleMatrix of isometry- and permutation-reduced
// coordinates w⁽ᵗ⁾, with one 2-wide observer block per particle:
//
//   1. each sample is centered on its centroid          (translations)
//   2. each sample is ICP-aligned to a reference sample (rotations)
//   3. particles are reordered by the same-type NN correspondence to the
//      reference                                        (permutations S*_n)
//
// The reference is sample 0; the paper aligns "all configuration samples for
// each time step" without naming a reference, and any fixed choice differs
// only by a global isometry, which the measure is invariant to.
//
// For large collectives the per-type k-means "mean observers" of §5.3.1 are
// provided: clusters are formed once on the reference sample and transported
// to every aligned sample by nearest-centroid assignment, which keeps
// cluster identity consistent across samples.
#pragma once

#include <cstddef>
#include <vector>

#include "align/icp.hpp"
#include "geom/frame_view.hpp"
#include "info/sample_matrix.hpp"
#include "rng/engine.hpp"

namespace sops::support {
class Executor;
}  // namespace sops::support

namespace sops::align {

/// An ensemble reduced to shape space: one row per sample, one 2-wide block
/// per observer, and the type of each observer block.
struct AlignedEnsemble {
  info::SampleMatrix samples;
  std::vector<info::Block> blocks;
  std::vector<sim::TypeId> block_types;

  [[nodiscard]] std::size_t sample_count() const noexcept {
    return samples.count();
  }
  [[nodiscard]] std::size_t observer_count() const noexcept {
    return blocks.size();
  }
};

/// Ensemble-alignment options.
struct EnsembleOptions {
  IcpOptions icp{};
  std::size_t threads = 0;
  /// When set, the per-sample alignment loop dispatches on this executor (a
  /// persistent pool slice the caller reuses across frames) and `threads`
  /// is ignored; when null, a transient fork/join of `threads` workers runs
  /// per call. Never affects results: every sample's alignment is
  /// independent and writes its own row.
  support::Executor* executor = nullptr;
  /// Skip the ICP rotation (still centers and permutes). Used by ablations
  /// to show the effect of factoring rotations out.
  bool rotations = true;
  /// Skip the permutation reduction (keeps simulation particle order).
  bool permutations = true;
};

/// Aligns m same-shaped configurations into shape space. `configs[s]` is
/// sample s; all samples share the particle `types` array (one collective,
/// §5.1). Requires at least one sample. This is the span-based entry point
/// the flat FrameStore feeds frame views into.
[[nodiscard]] AlignedEnsemble align_ensemble(
    geom::FrameView configs, const std::vector<sim::TypeId>& types,
    const EnsembleOptions& options = {});

/// Convenience overload for nested-vector configurations (single-run
/// trajectories, tests); identical semantics and results.
[[nodiscard]] AlignedEnsemble align_ensemble(
    const std::vector<std::vector<geom::Vec2>>& configs,
    const std::vector<sim::TypeId>& types, const EnsembleOptions& options = {});

/// Per-type k-means mean observers (§5.3.1): reduces an aligned ensemble of
/// n particles to l·k_per_type cluster-mean observers. Clusters are seeded
/// on the reference (row 0) with k-means++ and transported to other rows by
/// nearest-centroid assignment; a cluster left empty in a row falls back to
/// that row's type mean. Types with fewer than k_per_type particles get one
/// cluster per particle.
[[nodiscard]] AlignedEnsemble coarse_grain_ensemble(const AlignedEnsemble& fine,
                                                    std::size_t k_per_type,
                                                    rng::Xoshiro256& engine);

}  // namespace sops::align
