#include "align/ensemble.hpp"

#include <algorithm>

#include "cluster/kmeans.hpp"
#include "support/parallel_for.hpp"

namespace sops::align {

namespace {

// Shared implementation over one span per sample; both public overloads
// reduce to this row-view form.
AlignedEnsemble align_rows(std::span<const std::span<const geom::Vec2>> configs,
                           const std::vector<sim::TypeId>& types,
                           const EnsembleOptions& options) {
  support::expect(!configs.empty(), "align_ensemble: no samples");
  const std::size_t n = types.size();
  support::expect(n > 0, "align_ensemble: empty collective");
  for (const auto& config : configs) {
    support::expect(config.size() == n, "align_ensemble: sample size mismatch");
  }
  const std::size_t m = configs.size();

  AlignedEnsemble out;
  out.samples = info::SampleMatrix(m, 2 * n);
  out.blocks = info::uniform_blocks(n, 2);
  out.block_types = types;

  // Reference: centered sample 0 (defines observer identity).
  const std::vector<geom::Vec2> reference = geom::centered(configs[0]);
  auto write_row = [&](std::size_t s, const std::vector<geom::Vec2>& points) {
    auto row = out.samples.row(s);
    for (std::size_t i = 0; i < n; ++i) {
      row[2 * i] = points[i].x;
      row[2 * i + 1] = points[i].y;
    }
  };
  write_row(0, reference);

  const auto align_sample = [&](std::size_t s) {
    std::vector<geom::Vec2> moved = geom::centered(configs[s]);
    if (options.rotations) {
      const IcpResult icp =
          align_icp(moved, types, reference, types, options.icp);
      moved = icp.transform.apply(moved);
      // The fitted transform may reintroduce a tiny translation; shape
      // space demands exact centroid-centering, so re-center.
      moved = geom::centered(moved);
    }
    if (options.permutations) {
      const std::vector<std::size_t> match =
          match_by_type(moved, types, reference, types);
      // Observer j of this sample is the particle matched to reference
      // particle j.
      std::vector<geom::Vec2> permuted(n);
      for (std::size_t i = 0; i < n; ++i) permuted[match[i]] = moved[i];
      moved = std::move(permuted);
    }
    write_row(s, moved);
  };
  if (options.executor != nullptr) {
    support::parallel_for(*options.executor, 1, m, align_sample);
  } else {
    support::parallel_for(1, m, align_sample, options.threads);
  }

  return out;
}

}  // namespace

AlignedEnsemble align_ensemble(geom::FrameView configs,
                               const std::vector<sim::TypeId>& types,
                               const EnsembleOptions& options) {
  std::vector<std::span<const geom::Vec2>> rows;
  rows.reserve(configs.size());
  for (std::size_t s = 0; s < configs.size(); ++s) rows.push_back(configs[s]);
  return align_rows(rows, types, options);
}

AlignedEnsemble align_ensemble(const std::vector<std::vector<geom::Vec2>>& configs,
                               const std::vector<sim::TypeId>& types,
                               const EnsembleOptions& options) {
  std::vector<std::span<const geom::Vec2>> rows(configs.begin(), configs.end());
  return align_rows(rows, types, options);
}

AlignedEnsemble coarse_grain_ensemble(const AlignedEnsemble& fine,
                                      std::size_t k_per_type,
                                      rng::Xoshiro256& engine) {
  support::expect(k_per_type >= 1, "coarse_grain_ensemble: k must be >= 1");
  const std::size_t m = fine.sample_count();
  const std::size_t n = fine.observer_count();
  support::expect(m >= 1 && n >= 1, "coarse_grain_ensemble: empty ensemble");

  sim::TypeId max_type = 0;
  for (const sim::TypeId t : fine.block_types) max_type = std::max(max_type, t);
  const std::size_t type_count = max_type + 1;

  // Particle indices per type.
  std::vector<std::vector<std::size_t>> members(type_count);
  for (std::size_t i = 0; i < n; ++i) members[fine.block_types[i]].push_back(i);

  auto point_of = [&](std::size_t sample, std::size_t particle) {
    const auto row = fine.samples.row(sample);
    return geom::Vec2{row[2 * particle], row[2 * particle + 1]};
  };

  // Seed clusters on the reference row, per type.
  struct TypeClusters {
    sim::TypeId type;
    std::vector<geom::Vec2> centroids;
  };
  std::vector<TypeClusters> clusters;
  for (std::size_t t = 0; t < type_count; ++t) {
    if (members[t].empty()) continue;
    std::vector<geom::Vec2> points;
    points.reserve(members[t].size());
    for (const std::size_t i : members[t]) points.push_back(point_of(0, i));
    const std::size_t k = std::min(k_per_type, points.size());
    const cluster::KMeansResult result = cluster::kmeans(points, k, engine);
    clusters.push_back({static_cast<sim::TypeId>(t), result.centroids});
  }

  std::size_t total_clusters = 0;
  for (const TypeClusters& tc : clusters) total_clusters += tc.centroids.size();

  AlignedEnsemble out;
  out.samples = info::SampleMatrix(m, 2 * total_clusters);
  out.blocks = info::uniform_blocks(total_clusters, 2);
  out.block_types.reserve(total_clusters);
  for (const TypeClusters& tc : clusters) {
    for (std::size_t c = 0; c < tc.centroids.size(); ++c) {
      out.block_types.push_back(tc.type);
    }
  }

  // Transport: in every row, assign each particle to the nearest reference
  // cluster of its type; the observer value is the cluster's member mean.
  for (std::size_t s = 0; s < m; ++s) {
    auto row = out.samples.row(s);
    std::size_t cursor = 0;
    for (const TypeClusters& tc : clusters) {
      const auto& type_members = members[tc.type];
      const std::size_t k = tc.centroids.size();
      std::vector<geom::Vec2> sums(k);
      std::vector<std::size_t> counts(k, 0);
      geom::Vec2 type_sum{};
      for (const std::size_t i : type_members) {
        const geom::Vec2 p = point_of(s, i);
        type_sum += p;
        std::size_t best = 0;
        double best_d = geom::dist_sq(p, tc.centroids[0]);
        for (std::size_t c = 1; c < k; ++c) {
          const double d = geom::dist_sq(p, tc.centroids[c]);
          if (d < best_d) {
            best_d = d;
            best = c;
          }
        }
        sums[best] += p;
        ++counts[best];
      }
      const geom::Vec2 type_mean =
          type_sum / static_cast<double>(type_members.size());
      for (std::size_t c = 0; c < k; ++c) {
        const geom::Vec2 mean =
            counts[c] > 0 ? sums[c] / static_cast<double>(counts[c]) : type_mean;
        row[cursor++] = mean.x;
        row[cursor++] = mean.y;
      }
    }
  }
  return out;
}

}  // namespace sops::align
