// Type-aware ICP alignment of particle configurations (paper §5.2).
//
// To align two same-type-histogram configurations, the paper lifts each 2-D
// particle to 3-D with its type as a z coordinate "scaled by a factor a
// magnitude larger than the diameter of the collective": nearest-neighbor
// correspondences then never cross types. We implement the lift's *effect*
// directly: each type's targets get their own 2-D k-d tree and a particle
// queries only its type's tree — for same-type pairs the lifted distance is
// exactly the planar distance (the type axis contributes 0), so this is the
// same correspondence without scanning wrong-type candidates. The rigid
// update is restricted to the plane (a rotation never moves the z
// coordinate, so the 2-D Procrustes fit of the xy components is the exact
// 3-D optimum).
//
// ICP converges to a local optimum; because particle shapes have near-
// symmetries (rings, discs), we restart from several initial rotations and
// keep the best final mean-squared error. This multi-restart is our
// implementation choice (the paper does not describe one); with 1 restart
// the algorithm reduces to plain ICP.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "geom/rigid_transform.hpp"
#include "sim/particle_system.hpp"

namespace sops::align {

/// ICP options.
struct IcpOptions {
  std::size_t max_iterations = 50;
  double convergence_tolerance = 1e-9;  ///< stop when MSE improves less
  std::size_t rotation_restarts = 8;    ///< initial angles spread over [0, 2π)
  /// Multiplier on the collective diameter for the type lift. Retained for
  /// configuration compatibility; the per-type search structure enforces
  /// type-preserving correspondences for any positive value, so the exact
  /// scale no longer enters the computation.
  double type_lift_scale = 10.0;
};

/// Result of aligning a source configuration onto a target.
struct IcpResult {
  geom::RigidTransform2 transform;   ///< apply to source to match target
  double mean_squared_error = 0.0;   ///< final NN MSE in the plane
  std::size_t iterations = 0;        ///< iterations of the winning restart
};

/// Correspondence-free alignment: finds g ∈ ISO⁺(2) minimizing the NN
/// mean-squared error of g(source) against target, matching only particles
/// of equal type. Requires both configurations non-empty with identical
/// type histograms (over the max type id present).
[[nodiscard]] IcpResult align_icp(std::span<const geom::Vec2> source,
                                  std::span<const sim::TypeId> source_types,
                                  std::span<const geom::Vec2> target,
                                  std::span<const sim::TypeId> target_types,
                                  const IcpOptions& options = {});

/// One-to-one same-type correspondence: returns a permutation π with
/// π[i] = index of the target particle matched to source particle i.
/// Greedy by ascending pair distance within each type (each source and
/// target particle used once). Types must have equal counts on both sides.
[[nodiscard]] std::vector<std::size_t> match_by_type(
    std::span<const geom::Vec2> source, std::span<const sim::TypeId> source_types,
    std::span<const geom::Vec2> target, std::span<const sim::TypeId> target_types);

}  // namespace sops::align
