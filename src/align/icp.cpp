#include "align/icp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

#include "geom/aabb.hpp"
#include "geom/kdtree.hpp"
#include "support/error.hpp"

namespace sops::align {
namespace {

// Flat 3-D array of type-lifted points: (x, y, type · lift).
std::vector<double> lift(std::span<const geom::Vec2> points,
                         std::span<const sim::TypeId> types, double lift_scale) {
  std::vector<double> out;
  out.reserve(points.size() * 3);
  for (std::size_t i = 0; i < points.size(); ++i) {
    out.push_back(points[i].x);
    out.push_back(points[i].y);
    out.push_back(static_cast<double>(types[i]) * lift_scale);
  }
  return out;
}

void check_type_histograms(std::span<const sim::TypeId> a,
                           std::span<const sim::TypeId> b) {
  sim::TypeId max_type = 0;
  for (const sim::TypeId t : a) max_type = std::max(max_type, t);
  for (const sim::TypeId t : b) max_type = std::max(max_type, t);
  const auto ha = sim::type_histogram(a, max_type + 1);
  const auto hb = sim::type_histogram(b, max_type + 1);
  support::expect(ha == hb, "align: type histograms differ");
}

// One ICP descent from the given initial rotation (about the source
// centroid). Returns the final transform and MSE.
IcpResult icp_descent(std::span<const geom::Vec2> source,
                      std::span<const sim::TypeId> source_types,
                      std::span<const geom::Vec2> target,
                      const geom::KdTree& target_tree, double lift_scale,
                      double initial_angle, const IcpOptions& options) {
  const geom::Vec2 source_centroid = geom::centroid(source);
  geom::RigidTransform2 current{
      initial_angle,
      source_centroid - geom::rotated(source_centroid, initial_angle)};

  IcpResult result;
  result.mean_squared_error = std::numeric_limits<double>::infinity();

  std::vector<geom::Vec2> moved(source.size());
  std::vector<geom::Vec2> matched(source.size());
  double query[3];

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    for (std::size_t i = 0; i < source.size(); ++i) {
      moved[i] = current.apply(source[i]);
    }

    // NN correspondences in the lifted space (type never crosses).
    double mse = 0.0;
    for (std::size_t i = 0; i < source.size(); ++i) {
      query[0] = moved[i].x;
      query[1] = moved[i].y;
      query[2] = static_cast<double>(source_types[i]) * lift_scale;
      const geom::Neighbor nn = target_tree.nearest({query, 3});
      matched[i] = target[nn.index];
      mse += geom::dist_sq(moved[i], matched[i]);
    }
    mse /= static_cast<double>(source.size());

    if (mse >= result.mean_squared_error - options.convergence_tolerance) {
      result.mean_squared_error = std::min(mse, result.mean_squared_error);
      break;
    }
    result.mean_squared_error = mse;

    // Best rigid motion of the *original* source onto the matched targets —
    // fitting from the original (not the moved) points avoids compounding
    // round-off across iterations.
    current = geom::fit_rigid(source, matched);
  }
  result.transform = current;
  return result;
}

}  // namespace

IcpResult align_icp(std::span<const geom::Vec2> source,
                    std::span<const sim::TypeId> source_types,
                    std::span<const geom::Vec2> target,
                    std::span<const sim::TypeId> target_types,
                    const IcpOptions& options) {
  support::expect(!source.empty() && source.size() == source_types.size() &&
                      target.size() == target_types.size(),
                  "align_icp: invalid inputs");
  support::expect(source.size() == target.size(), "align_icp: size mismatch");
  support::expect(options.rotation_restarts >= 1,
                  "align_icp: need at least one restart");
  check_type_histograms(source_types, target_types);

  // Lift scale: one order of magnitude above the larger collective diameter
  // (paper §5.2), floored to keep degenerate single-point clouds valid.
  const double diameter =
      std::max({geom::bounding_box(target).diagonal(),
                geom::bounding_box(source).diagonal(), 1.0});
  const double lift_scale = options.type_lift_scale * diameter;

  const std::vector<double> lifted_target = lift(target, target_types, lift_scale);
  const geom::KdTree target_tree(lifted_target, 3);

  IcpResult best;
  best.mean_squared_error = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < options.rotation_restarts; ++r) {
    const double angle = 2.0 * std::numbers::pi * static_cast<double>(r) /
                         static_cast<double>(options.rotation_restarts);
    IcpResult candidate = icp_descent(source, source_types, target, target_tree,
                                      lift_scale, angle, options);
    if (candidate.mean_squared_error < best.mean_squared_error) {
      best = candidate;
    }
  }
  return best;
}

std::vector<std::size_t> match_by_type(std::span<const geom::Vec2> source,
                                       std::span<const sim::TypeId> source_types,
                                       std::span<const geom::Vec2> target,
                                       std::span<const sim::TypeId> target_types) {
  support::expect(source.size() == target.size() &&
                      source.size() == source_types.size() &&
                      target.size() == target_types.size(),
                  "match_by_type: invalid inputs");
  check_type_histograms(source_types, target_types);

  // All same-type pairs sorted by distance; greedily commit closest pairs.
  struct Pair {
    double dist_sq;
    std::uint32_t s;
    std::uint32_t t;
  };
  std::vector<Pair> pairs;
  for (std::uint32_t s = 0; s < source.size(); ++s) {
    for (std::uint32_t t = 0; t < target.size(); ++t) {
      if (source_types[s] != target_types[t]) continue;
      pairs.push_back({geom::dist_sq(source[s], target[t]), s, t});
    }
  }
  std::sort(pairs.begin(), pairs.end(), [](const Pair& a, const Pair& b) {
    if (a.dist_sq != b.dist_sq) return a.dist_sq < b.dist_sq;
    if (a.s != b.s) return a.s < b.s;  // deterministic tie-break
    return a.t < b.t;
  });

  const std::size_t n = source.size();
  std::vector<std::size_t> match(n, n);
  std::vector<char> target_used(n, 0);
  std::size_t committed = 0;
  for (const Pair& p : pairs) {
    if (match[p.s] != n || target_used[p.t]) continue;
    match[p.s] = p.t;
    target_used[p.t] = 1;
    if (++committed == n) break;
  }
  support::expect(committed == n, "match_by_type: incomplete matching");
  return match;
}

}  // namespace sops::align
