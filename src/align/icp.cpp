#include "align/icp.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numbers>

#include "geom/kdtree.hpp"
#include "support/error.hpp"

namespace sops::align {
namespace {

// Correspondence search structure: one 2-D kd-tree per particle type.
//
// The paper's type-lifted 3-D metric (x, y, type · lift) exists to make NN
// correspondences type-preserving — the lift is chosen so a cross-type
// candidate can never beat a same-type one. Querying the matching type's
// 2-D tree computes the same correspondence directly (for same-type pairs
// the lifted distance *is* the planar distance: the type axis contributes
// exactly 0.0), skips every wrong-type candidate the lifted tree still has
// to wade through near type-boundary splits, and drops a third of the
// per-point distance arithmetic.
struct TypedTargetTrees {
  std::vector<std::vector<double>> coords;       // per type: flat (x, y)
  std::vector<std::vector<std::uint32_t>> index; // per type: global target idx
  std::vector<geom::KdTree> trees;               // per type, over coords

  TypedTargetTrees(std::span<const geom::Vec2> target,
                   std::span<const sim::TypeId> target_types) {
    sim::TypeId max_type = 0;
    for (const sim::TypeId t : target_types) max_type = std::max(max_type, t);
    const std::size_t types = static_cast<std::size_t>(max_type) + 1;
    coords.resize(types);
    index.resize(types);
    for (std::size_t i = 0; i < target.size(); ++i) {
      const auto type = static_cast<std::size_t>(target_types[i]);
      coords[type].push_back(target[i].x);
      coords[type].push_back(target[i].y);
      index[type].push_back(static_cast<std::uint32_t>(i));
    }
    trees.reserve(types);
    for (std::size_t type = 0; type < types; ++type) {
      trees.emplace_back(coords[type], 2);
    }
  }

  // Global index of the target nearest to `p` among type `type`.
  [[nodiscard]] std::size_t nearest(geom::Vec2 p, sim::TypeId type) const {
    const double query[2] = {p.x, p.y};
    const geom::Neighbor nn =
        trees[static_cast<std::size_t>(type)].nearest({query, 2});
    return index[static_cast<std::size_t>(type)][nn.index];
  }
};

void check_type_histograms(std::span<const sim::TypeId> a,
                           std::span<const sim::TypeId> b) {
  sim::TypeId max_type = 0;
  for (const sim::TypeId t : a) max_type = std::max(max_type, t);
  for (const sim::TypeId t : b) max_type = std::max(max_type, t);
  const auto ha = sim::type_histogram(a, max_type + 1);
  const auto hb = sim::type_histogram(b, max_type + 1);
  support::expect(ha == hb, "align: type histograms differ");
}

// One ICP descent from the given initial rotation (about the source
// centroid). Returns the final transform and MSE.
IcpResult icp_descent(std::span<const geom::Vec2> source,
                      std::span<const sim::TypeId> source_types,
                      std::span<const geom::Vec2> target,
                      const TypedTargetTrees& target_trees,
                      double initial_angle, const IcpOptions& options) {
  const geom::Vec2 source_centroid = geom::centroid(source);
  geom::RigidTransform2 current{
      initial_angle,
      source_centroid - geom::rotated(source_centroid, initial_angle)};

  IcpResult result;
  result.mean_squared_error = std::numeric_limits<double>::infinity();

  std::vector<geom::Vec2> moved(source.size());
  std::vector<geom::Vec2> matched(source.size());

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    for (std::size_t i = 0; i < source.size(); ++i) {
      moved[i] = current.apply(source[i]);
    }

    // NN correspondences within each point's own type (type never crosses).
    double mse = 0.0;
    for (std::size_t i = 0; i < source.size(); ++i) {
      const std::size_t nn = target_trees.nearest(moved[i], source_types[i]);
      matched[i] = target[nn];
      mse += geom::dist_sq(moved[i], matched[i]);
    }
    mse /= static_cast<double>(source.size());

    if (mse >= result.mean_squared_error - options.convergence_tolerance) {
      result.mean_squared_error = std::min(mse, result.mean_squared_error);
      break;
    }
    result.mean_squared_error = mse;

    // Best rigid motion of the *original* source onto the matched targets —
    // fitting from the original (not the moved) points avoids compounding
    // round-off across iterations.
    current = geom::fit_rigid(source, matched);
  }
  result.transform = current;
  return result;
}

}  // namespace

IcpResult align_icp(std::span<const geom::Vec2> source,
                    std::span<const sim::TypeId> source_types,
                    std::span<const geom::Vec2> target,
                    std::span<const sim::TypeId> target_types,
                    const IcpOptions& options) {
  support::expect(!source.empty() && source.size() == source_types.size() &&
                      target.size() == target_types.size(),
                  "align_icp: invalid inputs");
  support::expect(source.size() == target.size(), "align_icp: size mismatch");
  support::expect(options.rotation_restarts >= 1,
                  "align_icp: need at least one restart");
  check_type_histograms(source_types, target_types);

  const TypedTargetTrees target_trees(target, target_types);

  IcpResult best;
  best.mean_squared_error = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < options.rotation_restarts; ++r) {
    const double angle = 2.0 * std::numbers::pi * static_cast<double>(r) /
                         static_cast<double>(options.rotation_restarts);
    IcpResult candidate = icp_descent(source, source_types, target,
                                      target_trees, angle, options);
    if (candidate.mean_squared_error < best.mean_squared_error) {
      best = candidate;
    }
  }
  return best;
}

std::vector<std::size_t> match_by_type(std::span<const geom::Vec2> source,
                                       std::span<const sim::TypeId> source_types,
                                       std::span<const geom::Vec2> target,
                                       std::span<const sim::TypeId> target_types) {
  support::expect(source.size() == target.size() &&
                      source.size() == source_types.size() &&
                      target.size() == target_types.size(),
                  "match_by_type: invalid inputs");
  check_type_histograms(source_types, target_types);

  // Lazy greedy matching, output-identical to sorting all same-type pairs by
  // (dist_sq, s, t) and committing greedily, without materializing the O(n²)
  // pair list. Each source keeps one heap entry: its closest unused
  // same-type target at the time the entry was pushed. Distances to a source
  // never shrink as targets get used, so a stale entry (target used since)
  // sorts no later than the source's true current best; popping it and
  // re-pushing the recomputed best therefore preserves the global
  // (dist_sq, s, t) commit order exactly, ties included.
  struct Pair {
    double dist_sq;
    std::uint32_t s;
    std::uint32_t t;
  };
  const auto later = [](const Pair& a, const Pair& b) noexcept {
    if (a.dist_sq != b.dist_sq) return a.dist_sq > b.dist_sq;
    if (a.s != b.s) return a.s > b.s;  // deterministic tie-break
    return a.t > b.t;
  };

  const std::size_t n = source.size();
  sim::TypeId max_type = 0;
  for (const sim::TypeId t : target_types) max_type = std::max(max_type, t);
  std::vector<std::vector<std::uint32_t>> targets_of_type(
      static_cast<std::size_t>(max_type) + 1);
  for (std::uint32_t t = 0; t < n; ++t) {
    targets_of_type[target_types[t]].push_back(t);
  }

  std::vector<char> target_used(n, 0);
  // Closest unused target of source s; strict < keeps the lowest index among
  // equal distances, matching the sorted path's t tie-break.
  const auto best_candidate = [&](std::uint32_t s) noexcept {
    Pair best{std::numeric_limits<double>::infinity(), s, 0};
    for (const std::uint32_t t : targets_of_type[source_types[s]]) {
      if (target_used[t]) continue;
      const double d2 = geom::dist_sq(source[s], target[t]);
      if (d2 < best.dist_sq) {
        best.dist_sq = d2;
        best.t = t;
      }
    }
    return best;
  };

  std::vector<Pair> heap;
  heap.reserve(n);
  for (std::uint32_t s = 0; s < n; ++s) heap.push_back(best_candidate(s));
  std::make_heap(heap.begin(), heap.end(), later);

  std::vector<std::size_t> match(n, n);
  std::size_t committed = 0;
  while (committed < n && !heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), later);
    const Pair p = heap.back();
    heap.pop_back();
    if (target_used[p.t]) {
      heap.push_back(best_candidate(p.s));
      std::push_heap(heap.begin(), heap.end(), later);
      continue;
    }
    match[p.s] = p.t;
    target_used[p.t] = 1;
    ++committed;
  }
  support::expect(committed == n, "match_by_type: incomplete matching");
  return match;
}

}  // namespace sops::align
