// Deterministic random-number engines for reproducible stochastic
// simulation.
//
// We ship our own engine (xoshiro256++) and samplers instead of relying on
// std::normal_distribution etc. because the standard leaves distribution
// algorithms implementation-defined: with libstdc++ vs libc++ the same seed
// would produce different trajectories. Every number a sops experiment draws
// is fully determined by (seed, stream, draw index), independent of
// platform, standard library, and thread count.
#pragma once

#include <cstdint>

namespace sops::rng {

/// SplitMix64 — used only to expand a user seed into engine state.
/// Passing the same input always yields the same output sequence.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ 1.0 (Blackman & Vigna) — the workhorse engine.
///
/// Satisfies the std uniform random bit generator concept so it can be used
/// with standard facilities where determinism does not matter.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds via SplitMix64 expansion (the reference-recommended procedure).
  explicit constexpr Xoshiro256(std::uint64_t seed = 0x5EED5EED5EED5EEDull) noexcept {
    SplitMix64 mix(seed);
    for (auto& word : state_) word = mix.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Advances the state by 2¹²⁸ draws. Calling jump() k times on engines
  /// seeded identically yields 2¹²⁸-spaced, effectively independent streams —
  /// this backs the one-stream-per-simulation-sample discipline.
  constexpr void jump() noexcept {
    constexpr std::uint64_t kJump[] = {0x180EC6D33CFD0ABAull, 0xD5A61266F0C9392Cull,
                                       0xA9582618E03FC9AAull, 0x39ABDC4529B1661Cull};
    std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    for (const std::uint64_t word : kJump) {
      for (int bit = 0; bit < 64; ++bit) {
        if (word & (std::uint64_t{1} << bit)) {
          s0 ^= state_[0];
          s1 ^= state_[1];
          s2 ^= state_[2];
          s3 ^= state_[3];
        }
        (*this)();
      }
    }
    state_[0] = s0;
    state_[1] = s1;
    state_[2] = s2;
    state_[3] = s3;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

/// Independent engine for stream index `stream` under a master seed.
///
/// Streams are separated both by seed derivation (SplitMix64 over the pair)
/// and by jump(), so distinct (seed, stream) pairs never share a sequence.
[[nodiscard]] inline Xoshiro256 make_stream(std::uint64_t seed,
                                            std::uint64_t stream) noexcept {
  SplitMix64 mix(seed ^ (0x6A09E667F3BCC909ull + stream * 0x9E3779B97F4A7C15ull));
  Xoshiro256 engine(mix.next());
  engine.jump();
  return engine;
}

}  // namespace sops::rng
