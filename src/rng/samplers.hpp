// Platform-independent samplers over a Xoshiro256 engine.
//
// All algorithms here are fixed (not implementation-defined), so a given
// (seed, stream) reproduces bit-identical draws on any conforming compiler.
#pragma once

#include <cmath>
#include <numbers>

#include "geom/vec2.hpp"
#include "rng/engine.hpp"

namespace sops::rng {

/// Uniform double in [0, 1) with 53 random bits.
[[nodiscard]] inline double uniform01(Xoshiro256& engine) noexcept {
  return static_cast<double>(engine() >> 11) * 0x1.0p-53;
}

/// Uniform double in [lo, hi).
[[nodiscard]] inline double uniform(Xoshiro256& engine, double lo,
                                    double hi) noexcept {
  return lo + (hi - lo) * uniform01(engine);
}

/// Uniform integer in [0, n) by rejection (unbiased). n must be positive.
[[nodiscard]] inline std::uint64_t uniform_index(Xoshiro256& engine,
                                                 std::uint64_t n) noexcept {
  // Lemire-style rejection on the top bits.
  const std::uint64_t threshold = (~n + 1) % n;  // 2^64 mod n
  for (;;) {
    const std::uint64_t r = engine();
    if (r >= threshold) return r % n;
  }
}

/// Standard normal draw via Box–Muller (both values used alternately would
/// require state; we deliberately spend two uniforms per normal to keep the
/// sampler stateless and the draw count predictable).
[[nodiscard]] inline double standard_normal(Xoshiro256& engine) noexcept {
  // u ∈ (0,1] to keep log(u) finite.
  const double u = 1.0 - uniform01(engine);
  const double v = uniform01(engine);
  return std::sqrt(-2.0 * std::log(u)) *
         std::cos(2.0 * std::numbers::pi * v);
}

/// Normal draw with the given mean and standard deviation.
[[nodiscard]] inline double normal(Xoshiro256& engine, double mean,
                                   double stddev) noexcept {
  return mean + stddev * standard_normal(engine);
}

/// 2-D vector of i.i.d. N(0, stddev²) components — the noise term w of the
/// paper's equation of motion.
[[nodiscard]] inline geom::Vec2 normal_vec2(Xoshiro256& engine,
                                            double stddev) noexcept {
  const double x = standard_normal(engine);
  const double y = standard_normal(engine);
  return {stddev * x, stddev * y};
}

/// Uniform point on the disc of given radius centered at the origin —
/// the paper's initial particle distribution (§5.1). Area-uniform via the
/// sqrt radial transform.
[[nodiscard]] inline geom::Vec2 uniform_disc(Xoshiro256& engine,
                                             double radius) noexcept {
  const double r = radius * std::sqrt(uniform01(engine));
  const double theta = 2.0 * std::numbers::pi * uniform01(engine);
  return {r * std::cos(theta), r * std::sin(theta)};
}

}  // namespace sops::rng
