// Named experiment presets — the exact systems of the paper's figures.
//
// Centralizing them here keeps benches, examples, and integration tests in
// agreement about what "the Fig. 4 system" is. Every preset documents the
// figure caption it encodes and the choices the caption leaves open.
#pragma once

#include <cstdint>

#include "core/experiment.hpp"
#include "sim/generators.hpp"

namespace sops::core::presets {

/// Fig. 4 / Fig. 6: n = 50, l = 3, r_c = 5.0,
/// r_αβ = {{2.5, 5.0, 4.0}, {5.0, 2.5, 2.0}, {4.0, 2.0, 3.5}}.
/// The caption does not name the force law; we use F¹ with k_αβ = 1 (the
/// r_αβ matrix is the directly-specifiable F¹ preferred-distance matrix).
[[nodiscard]] sim::SimulationConfig fig4_three_type_collective();

/// Fig. 5 / Fig. 7: F¹, 20 particles of one type, r_c > 2·r_αα so two
/// concentric regular polygons form with a free mutual rotation.
/// We use r_αα = 2, k = 1, r_c = ∞.
[[nodiscard]] sim::SimulationConfig fig5_single_type_rings();

/// Fig. 3 (right): single-type F² collective that settles into a regular
/// disc-shaped grid (the paper's literal σ = 1 F² regime).
[[nodiscard]] sim::SimulationConfig fig3_single_type_grid();

/// Fig. 9 / Fig. 10 systems: 20 particles, l types (20 or 5), F¹ with
/// random r_αβ ∈ [2, 8], k_αβ = 1, for a given cut-off radius.
/// `matrix_index` selects one of the "10 samples of random types".
[[nodiscard]] sim::SimulationConfig fig9_random_types(
    std::size_t type_count, double cutoff_radius, std::uint64_t matrix_index);

/// Fig. 8 system: n particles, l types, F² interactions specified by random
/// preferred-distance radii r_αβ ∈ [1, 5] (k = 1, τ ∈ [1, 3]).
[[nodiscard]] sim::SimulationConfig fig8_f2_random_types(
    std::size_t particle_count, std::size_t type_count,
    std::uint64_t matrix_index);

/// Fig. 12-style emergent structures: two-type collective at small r_c whose
/// cross-type preferred distance exceeds the within-type ones, producing a
/// ball of one type enclosed by a ring of the other.
[[nodiscard]] sim::SimulationConfig fig12_enclosed_structure();

/// A control system with interactions disabled (k_αβ = 0): pure diffusion,
/// the "completely random process" of §3.1 that must show no
/// self-organization.
[[nodiscard]] sim::SimulationConfig noninteracting_control(std::size_t n);

}  // namespace sops::core::presets
