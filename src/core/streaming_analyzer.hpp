// Streaming analysis: overlap the measurement pipeline with the simulation
// that produces its input.
//
// The post-hoc pipeline (core/analyzer.hpp) waits for run_experiment to
// return before touching a single frame, so the analysis wall time stacks
// on top of the simulation's. A StreamingAnalyzer instead plugs into
// ExperimentConfig::observer: sample workers announce each recorded frame,
// a per-frame arrival counter detects the moment a frame's last sample has
// landed, and a dedicated consumer thread runs the shared per-frame body
// (analyze_frame) on complete frames while later samples still simulate.
//
// Because every sample records its frames in grid order, frames complete in
// ascending frame order — the consumer's FIFO queue doubles as a
// sequential-read schedule over the (possibly disk-backed) frame store.
//
// Determinism: the consumer runs the exact same analyze_frame the post-hoc
// analyzer runs, with the same per-frame coarse-graining seed, so the
// streamed AnalysisResult is bitwise-identical to
// analyze_self_organization on the same recording — overlap changes when
// the numbers are computed, never what they are.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/analyzer.hpp"
#include "core/experiment.hpp"

namespace sops::core {

/// Producer/consumer analyzer. Lifecycle:
///
///   StreamingAnalyzer analyzer(options);
///   config.observer = &analyzer;
///   EnsembleSeries series = run_experiment(config);  // analysis overlaps
///   AnalysisResult result = analyzer.finish();       // series still alive!
///
/// finish() must run before the series is destroyed (the consumer reads
/// frame views into its store), and only after run_experiment returned —
/// if the producing run throws, call abort() instead (or just destroy the
/// analyzer). measure_experiment_streamed() wraps the whole dance.
class StreamingAnalyzer final : public RecordingObserver {
 public:
  /// `cancel` (not owned; may be null) makes the consumer cancellation-
  /// aware: it polls the token between frames (and while idle, on a short
  /// wait timeout), and a raised token surfaces as sops::CancelledError
  /// out of finish() once the consumer drained — the job layer's "cancel
  /// during the analysis tail" path. A cancelled *producer* throws out of
  /// run_experiment before finish() is reached; call abort() there, as on
  /// any producer failure.
  explicit StreamingAnalyzer(AnalysisOptions options = {},
                             const support::CancelToken* cancel = nullptr);
  ~StreamingAnalyzer() override;

  StreamingAnalyzer(const StreamingAnalyzer&) = delete;
  StreamingAnalyzer& operator=(const StreamingAnalyzer&) = delete;

  /// RecordingObserver: validates the series against the options (throws
  /// on the calling thread, before any sample simulates), captures frame
  /// views and grid metadata, and starts the consumer thread.
  void on_recording_started(const EnsembleSeries& series) override;

  /// RecordingObserver: counts arrivals per frame; the sample that
  /// completes a frame enqueues it for the consumer. Lock-free except for
  /// the completing sample's enqueue.
  void on_frames_recorded(std::size_t begin_frame, std::size_t end_frame,
                          std::size_t local_sample) override;

  /// Blocks until every frame is analyzed, joins the consumer, and
  /// assembles the result (layout-identical to analyze_self_organization).
  /// If the consumer hit an exception it is rethrown here, after the
  /// consumer has stopped touching the store. Call only after the
  /// producing run_experiment returned — an aborted producer leaves frames
  /// that will never complete, and finish() would wait on them forever.
  [[nodiscard]] AnalysisResult finish();

  /// Stops without a result: pending frames are dropped, the consumer is
  /// joined, a stored consumer exception is discarded. Safe to call in any
  /// state (including before any recording started, or twice).
  void abort() noexcept;

 private:
  void consume();

  AnalysisOptions options_;
  const support::CancelToken* cancel_ = nullptr;

  // Immutable after on_recording_started (the consumer and the workers
  // only read them).
  std::vector<geom::FrameView> frames_;
  std::vector<sim::TypeId> types_;
  std::vector<std::size_t> frame_steps_;
  std::size_t frame_count_ = 0;
  std::size_t samples_ = 0;
  bool coarse_ = false;
  bool started_ = false;

  // One arrival counter per frame. The completing fetch_add (acq_rel) of a
  // frame's last sample synchronizes with every earlier sample's release
  // increment, so the consumer observes all of the frame's slot writes.
  std::unique_ptr<std::atomic<std::size_t>[]> arrivals_;

  // Consumer state, guarded by mutex_ (except points_/observer_counts_
  // slots, which only the consumer writes and finish() reads post-join).
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::size_t> ready_;
  std::size_t next_ready_ = 0;
  std::size_t frames_done_ = 0;
  bool stop_ = false;
  std::exception_ptr error_;

  std::vector<TimePoint> points_;
  std::vector<std::size_t> observer_counts_;
  std::thread consumer_;
};

/// The streaming counterpart of measure_experiment: runs the experiment
/// with a StreamingAnalyzer attached and returns the (bitwise-identical)
/// analysis. On any failure — producer or consumer — the analyzer is
/// cleanly drained before the exception propagates.
[[nodiscard]] AnalysisResult measure_experiment_streamed(
    const ExperimentConfig& config, const AnalysisOptions& options = {});

}  // namespace sops::core
