#include "core/hierarchy.hpp"

#include <algorithm>

#include "cluster/kmeans.hpp"

namespace sops::core {

double HierarchicalDecomposition::reconstructed() const noexcept {
  double total = by_type.between_groups;
  // Types split at level 2 contribute their reconstructed split; types not
  // split contribute their level-1 within term directly.
  for (const TypeLevelDecomposition& type_level : within_types) {
    total += type_level.by_cluster.reconstructed();
  }
  // Level-1 within terms for types that were not split (fewer than two
  // particles): within_types entries exist only for split types, and the
  // grouping order matches by_type.within_group order for those; unsplit
  // types carry zero within-information by definition, so nothing to add.
  return total;
}

HierarchicalDecomposition decompose_two_level(
    const align::AlignedEnsemble& ensemble, std::size_t clusters_per_type,
    const info::KsgOptions& options, std::uint64_t cluster_seed) {
  support::expect(clusters_per_type >= 1,
                  "decompose_two_level: need at least one cluster per type");
  const std::size_t n = ensemble.observer_count();
  support::expect(n >= 2, "decompose_two_level: need at least two observers");

  sim::TypeId max_type = 0;
  for (const sim::TypeId t : ensemble.block_types) {
    max_type = std::max(max_type, t);
  }
  const std::size_t type_count = static_cast<std::size_t>(max_type) + 1;

  HierarchicalDecomposition result;

  // Level 1: by type.
  const info::ObserverGrouping type_grouping =
      info::group_blocks_by_type(ensemble.block_types, type_count);
  result.by_type = info::decompose_multi_information(
      ensemble.samples, ensemble.blocks, type_grouping, options);

  // Level 2: within each type, cluster the reference-sample positions.
  rng::Xoshiro256 engine = rng::make_stream(cluster_seed, 0);
  for (const auto& members : type_grouping) {
    if (members.size() < 2) continue;
    const sim::TypeId type = ensemble.block_types[members.front()];

    // Reference positions of this type's particles.
    std::vector<geom::Vec2> reference;
    reference.reserve(members.size());
    for (const std::size_t b : members) {
      reference.push_back({ensemble.samples(0, ensemble.blocks[b].offset),
                           ensemble.samples(0, ensemble.blocks[b].offset + 1)});
    }
    const std::size_t k = std::min(clusters_per_type, members.size());
    const cluster::KMeansResult clusters =
        cluster::kmeans(reference, k, engine);

    // Gather this type's columns into a compact matrix; group by cluster.
    info::SampleMatrix type_samples(ensemble.sample_count(),
                                    2 * members.size());
    for (std::size_t s = 0; s < ensemble.sample_count(); ++s) {
      for (std::size_t local = 0; local < members.size(); ++local) {
        const info::Block& block = ensemble.blocks[members[local]];
        type_samples(s, 2 * local) = ensemble.samples(s, block.offset);
        type_samples(s, 2 * local + 1) =
            ensemble.samples(s, block.offset + 1);
      }
    }
    info::ObserverGrouping cluster_grouping(k);
    for (std::size_t local = 0; local < members.size(); ++local) {
      cluster_grouping[clusters.assignment[local]].push_back(local);
    }
    std::erase_if(cluster_grouping,
                  [](const auto& group) { return group.empty(); });

    TypeLevelDecomposition type_level;
    type_level.type = type;
    for (const auto& group : cluster_grouping) {
      type_level.cluster_sizes.push_back(group.size());
    }
    if (cluster_grouping.size() >= 2) {
      type_level.by_cluster = info::decompose_multi_information(
          type_samples, info::uniform_blocks(members.size(), 2),
          cluster_grouping, options);
    } else {
      // Single cluster: the whole within-type term is within-cluster.
      type_level.by_cluster.total = info::multi_information_ksg(
          type_samples, info::uniform_blocks(members.size(), 2), options);
      type_level.by_cluster.between_groups = 0.0;
      type_level.by_cluster.within_group = {type_level.by_cluster.total};
    }
    result.within_types.push_back(std::move(type_level));
  }
  return result;
}

}  // namespace sops::core
