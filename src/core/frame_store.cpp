#include "core/frame_store.hpp"

#include "support/error.hpp"

namespace sops::core {

FrameStore::FrameStore(std::size_t frames, std::size_t samples,
                       std::size_t particles)
    : frames_(frames), samples_(samples), particles_(particles) {
  support::expect(frames >= 1 && samples >= 1 && particles >= 1,
                  "FrameStore: all dimensions must be positive");
  data_.resize(frames * samples * particles);
}

}  // namespace sops::core
