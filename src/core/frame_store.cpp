#include "core/frame_store.hpp"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>

#include "support/error.hpp"
#include "support/executor.hpp"
#include "support/parallel_for.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <dirent.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace sops::core {
namespace {

constexpr const char kSpillPrefix[] = "sops_frames_";
constexpr const char kSpillSuffix[] = ".spill";

// Spill files are private scratch; the name only has to be unique within
// the machine for the store's lifetime (MappedBuffer opens O_EXCL, so a
// collision falls back to heap instead of clobbering a live recording).
// pid + counter disambiguate live processes; the timestamp keeps a pid
// recycled after a crashed run (whose leaked file still holds the old
// name) from colliding with it.
std::string next_spill_path(const std::string& spill_dir) {
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t id = counter.fetch_add(1, std::memory_order_relaxed);
#if defined(__unix__) || defined(__APPLE__)
  const long pid = static_cast<long>(::getpid());
#else
  const long pid = 0;
#endif
  const auto stamp = std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::system_clock::now().time_since_epoch())
                         .count();
  std::string dir = spill_dir.empty() ? std::string(".") : spill_dir;
  if (dir.back() != '/') dir += '/';
  return dir + kSpillPrefix + std::to_string(pid) + "_" +
         std::to_string(stamp) + "_" + std::to_string(id) + kSpillSuffix;
}

#if defined(__unix__) || defined(__APPLE__)
// A leaked spill must sit untouched this long (by mtime) before the sweep
// may reclaim it — the second gate next to pid-liveness, so a file whose
// writer died a moment ago (or whose pid was recycled onto an unrelated
// live process, making the liveness probe lie in the *keep* direction
// only) is never in doubt.
constexpr std::chrono::seconds kStaleSpillMinAge{10 * 60};

// Parses the pid between "sops_frames_" and the next '_'; 0 on any
// deviation from the generated shape (someone else's file — leave it).
long spill_file_pid(const std::string& name) {
  const std::size_t prefix_len = sizeof(kSpillPrefix) - 1;
  const std::size_t suffix_len = sizeof(kSpillSuffix) - 1;
  if (name.size() <= prefix_len + suffix_len) return 0;
  if (name.compare(0, prefix_len, kSpillPrefix) != 0) return 0;
  if (name.compare(name.size() - suffix_len, suffix_len, kSpillSuffix) != 0) {
    return 0;
  }
  const std::size_t pid_end = name.find('_', prefix_len);
  if (pid_end == std::string::npos || pid_end == prefix_len) return 0;
  const std::string digits = name.substr(prefix_len, pid_end - prefix_len);
  char* end = nullptr;
  errno = 0;
  const long pid = std::strtol(digits.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0' || pid <= 0) return 0;
  return pid;
}
#endif

}  // namespace

void sweep_stale_spill_files(const std::string& spill_dir) noexcept {
#if defined(__unix__) || defined(__APPLE__)
  const std::string dir = spill_dir.empty() ? std::string(".") : spill_dir;
  ::DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) return;
  const auto now = std::chrono::system_clock::now();
  while (const struct ::dirent* entry = ::readdir(handle)) {
    const long pid = spill_file_pid(entry->d_name);
    if (pid == 0) continue;
    // kill(pid, 0) probes existence without signaling; only a definite
    // ESRCH counts as dead (EPERM means alive under another uid).
    if (::kill(static_cast<pid_t>(pid), 0) == 0 || errno != ESRCH) continue;
    const std::string path = dir + "/" + entry->d_name;
    struct ::stat info {};
    if (::stat(path.c_str(), &info) != 0) continue;
    const auto mtime = std::chrono::system_clock::from_time_t(info.st_mtime);
    if (now - mtime < kStaleSpillMinAge) continue;
    ::unlink(path.c_str());  // best effort; a racing sweep may win
  }
  ::closedir(handle);
#else
  (void)spill_dir;
#endif
}

FrameStore::FrameStore(std::size_t frames, std::size_t samples,
                       std::size_t particles)
    : FrameStore(frames, samples, particles, FrameStoreOptions{}) {}

FrameStore::FrameStore(std::size_t frames, std::size_t samples,
                       std::size_t particles, const FrameStoreOptions& options)
    : frames_(frames), samples_(samples), particles_(particles) {
  support::expect(frames >= 1 && samples >= 1 && particles >= 1,
                  "FrameStore: all dimensions must be positive");
  const std::size_t payload = bytes();

  if (!options.shard_path.empty()) {
    // Durable shard: the mapping *is* the recording, so there is no heap
    // fallback — a store that silently could not persist would defeat the
    // whole checkpoint/restart contract. kEmpty keeps the failed attempt
    // from allocating a full payload we would immediately throw away.
    io::MappedBuffer buffer =
        options.open_existing
            ? io::MappedBuffer::open_existing(options.shard_path, payload,
                                              io::MappedBuffer::OnFailure::kEmpty)
            : io::MappedBuffer(options.shard_path, payload,
                               io::MappedBuffer::OnFailure::kEmpty,
                               io::MappedBuffer::Lifetime::kPersist);
    if (!buffer.mapped()) {
      throw Error("FrameStore: cannot " +
                  std::string(options.open_existing ? "reopen" : "create") +
                  " shard '" + options.shard_path +
                  "': " + buffer.fallback_reason());
    }
    data_ = static_cast<geom::Vec2*>(buffer.data());
    buffer_ = std::move(buffer);
    io_error_ = std::make_unique<IoErrorState>();
    return;
  }

  const bool spill =
      options.mode == StorageMode::kMapped ||
      (options.mode == StorageMode::kAuto && payload >= options.auto_spill_bytes);
  if (spill) {
    // Before adding a scratch file, reclaim ones leaked by crashed runs —
    // a multi-hour spill that died at hour three otherwise sits in
    // spill_dir forever, silently eating the disk the next run needs.
    sweep_stale_spill_files(options.spill_dir);
    // kEmpty: on failure the store resizes its own typed vector below —
    // the buffer's default heap fallback would be a discarded full-payload
    // allocation.
    io::MappedBuffer buffer(next_spill_path(options.spill_dir), payload,
                            io::MappedBuffer::OnFailure::kEmpty);
    if (buffer.mapped()) {
      // Fresh file pages read as zero, matching the heap vector's value
      // initialization; Vec2 is an implicit-lifetime type, so the mapped
      // block is usable as a Vec2 array without touching its pages (an
      // explicit construction pass would fault the whole payload in
      // upfront, defeating the spill).
      data_ = static_cast<geom::Vec2*>(buffer.data());
      buffer_ = std::move(buffer);
      io_error_ = std::make_unique<IoErrorState>();
      return;
    }
    fallback_reason_ = buffer.fallback_reason();
  }
  heap_.resize(frames * samples * particles);
  data_ = heap_.data();
}

geom::FrameView FrameStore::front() const {
  support::expect(!empty(), "FrameStore::front: store has no frames");
  return (*this)[0];
}

geom::FrameView FrameStore::back() const {
  support::expect(!empty(), "FrameStore::back: store has no frames");
  return (*this)[frames_ - 1];
}

std::string FrameStore::flush_error() const {
  if (io_error_ == nullptr) return {};
  const std::lock_guard<std::mutex> lock(io_error_->mutex);
  return io_error_->message;
}

void FrameStore::note_io_error(const char* operation) {
  // errno is thread-local, so the text is captured on the failing thread;
  // only the first failure is kept (à la fallback_reason_ — the root cause,
  // not the cascade).
  const std::string message =
      std::string(operation) + ": " + std::strerror(errno);
  const std::lock_guard<std::mutex> lock(io_error_->mutex);
  if (io_error_->message.empty()) io_error_->message = message;
}

// Shared frame-axis sharding of flush_samples/sync_samples: runs
// `flush(f)` for every frame, over the executor when one with width was
// lent. Sample range [begin, end) of frame f is one contiguous extent;
// extents of different frames (and of disjoint sample ranges) never
// overlap, so any sharding of the frame axis touches disjoint file ranges.
template <typename FlushFrame>
void FrameStore::for_each_frame_extent(support::Executor* executor,
                                       FlushFrame&& flush) {
  if (executor == nullptr || executor->width() <= 1 || frames_ == 1) {
    for (std::size_t f = 0; f < frames_; ++f) flush(f);
    return;
  }
  support::parallel_for(*executor, 0, frames_,
                        [&](std::size_t f) { flush(f); });
}

void FrameStore::flush_samples(std::size_t begin, std::size_t end,
                               support::Executor* executor) {
  support::expect(begin <= end && end <= samples_,
                  "FrameStore::flush_samples: sample range out of bounds");
  if (!buffer_.mapped() || begin == end) return;
  const std::size_t extent = (end - begin) * particles_ * sizeof(geom::Vec2);
  for_each_frame_extent(executor, [&](std::size_t f) {
    const std::size_t offset =
        (f * samples_ + begin) * particles_ * sizeof(geom::Vec2);
    if (!buffer_.flush(offset, extent)) note_io_error("msync");
    if (!buffer_.release(offset, extent)) note_io_error("madvise");
  });
}

bool FrameStore::sync_samples(std::size_t begin, std::size_t end,
                              support::Executor* executor) {
  support::expect(begin <= end && end <= samples_,
                  "FrameStore::sync_samples: sample range out of bounds");
  if (!buffer_.mapped() || begin == end) return true;
  const std::size_t extent = (end - begin) * particles_ * sizeof(geom::Vec2);
  std::atomic<bool> ok{true};
  for_each_frame_extent(executor, [&](std::size_t f) {
    const std::size_t offset =
        (f * samples_ + begin) * particles_ * sizeof(geom::Vec2);
    if (!buffer_.sync(offset, extent)) {
      note_io_error("msync (MS_SYNC)");
      ok.store(false, std::memory_order_relaxed);
      return;  // don't drop pages whose disk copy is unconfirmed
    }
    if (!buffer_.release(offset, extent)) note_io_error("madvise");
  });
  return ok.load(std::memory_order_relaxed);
}

}  // namespace sops::core
