#include "core/frame_store.hpp"

#include <atomic>
#include <chrono>
#include <string>

#include "support/error.hpp"
#include "support/executor.hpp"
#include "support/parallel_for.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace sops::core {
namespace {

// Spill files are private scratch; the name only has to be unique within
// the machine for the store's lifetime (MappedBuffer opens O_EXCL, so a
// collision falls back to heap instead of clobbering a live recording).
// pid + counter disambiguate live processes; the timestamp keeps a pid
// recycled after a crashed run (whose leaked file still holds the old
// name) from colliding with it.
std::string next_spill_path(const std::string& spill_dir) {
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t id = counter.fetch_add(1, std::memory_order_relaxed);
#if defined(__unix__) || defined(__APPLE__)
  const long pid = static_cast<long>(::getpid());
#else
  const long pid = 0;
#endif
  const auto stamp = std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::system_clock::now().time_since_epoch())
                         .count();
  std::string dir = spill_dir.empty() ? std::string(".") : spill_dir;
  if (dir.back() != '/') dir += '/';
  return dir + "sops_frames_" + std::to_string(pid) + "_" +
         std::to_string(stamp) + "_" + std::to_string(id) + ".spill";
}

}  // namespace

FrameStore::FrameStore(std::size_t frames, std::size_t samples,
                       std::size_t particles)
    : FrameStore(frames, samples, particles, FrameStoreOptions{}) {}

FrameStore::FrameStore(std::size_t frames, std::size_t samples,
                       std::size_t particles, const FrameStoreOptions& options)
    : frames_(frames), samples_(samples), particles_(particles) {
  support::expect(frames >= 1 && samples >= 1 && particles >= 1,
                  "FrameStore: all dimensions must be positive");
  const std::size_t payload = bytes();
  const bool spill =
      options.mode == StorageMode::kMapped ||
      (options.mode == StorageMode::kAuto && payload >= options.auto_spill_bytes);
  if (spill) {
    // kEmpty: on failure the store resizes its own typed vector below —
    // the buffer's default heap fallback would be a discarded full-payload
    // allocation.
    io::MappedBuffer buffer(next_spill_path(options.spill_dir), payload,
                            io::MappedBuffer::OnFailure::kEmpty);
    if (buffer.mapped()) {
      // Fresh file pages read as zero, matching the heap vector's value
      // initialization; Vec2 is an implicit-lifetime type, so the mapped
      // block is usable as a Vec2 array without touching its pages (an
      // explicit construction pass would fault the whole payload in
      // upfront, defeating the spill).
      data_ = static_cast<geom::Vec2*>(buffer.data());
      buffer_ = std::move(buffer);
      return;
    }
    fallback_reason_ = buffer.fallback_reason();
  }
  heap_.resize(frames * samples * particles);
  data_ = heap_.data();
}

geom::FrameView FrameStore::front() const {
  support::expect(!empty(), "FrameStore::front: store has no frames");
  return (*this)[0];
}

geom::FrameView FrameStore::back() const {
  support::expect(!empty(), "FrameStore::back: store has no frames");
  return (*this)[frames_ - 1];
}

void FrameStore::flush_samples(std::size_t begin, std::size_t end,
                               support::Executor* executor) {
  support::expect(begin <= end && end <= samples_,
                  "FrameStore::flush_samples: sample range out of bounds");
  if (!buffer_.mapped() || begin == end) return;
  // Sample range [begin, end) of frame f is one contiguous extent; extents
  // of different frames (and of disjoint sample ranges) never overlap, so
  // any sharding of the frame axis flushes disjoint file ranges.
  const std::size_t extent = (end - begin) * particles_ * sizeof(geom::Vec2);
  const auto flush_frame = [&](std::size_t f) {
    const std::size_t offset =
        (f * samples_ + begin) * particles_ * sizeof(geom::Vec2);
    buffer_.flush(offset, extent);
    buffer_.release(offset, extent);
  };
  if (executor == nullptr || executor->width() <= 1 || frames_ == 1) {
    for (std::size_t f = 0; f < frames_; ++f) flush_frame(f);
    return;
  }
  support::parallel_for(*executor, 0, frames_,
                        [&](std::size_t f) { flush_frame(f); });
}

}  // namespace sops::core
