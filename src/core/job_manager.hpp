// Job-oriented experiment orchestration: many experiments, one machine.
//
// Everything below core/ runs one experiment per call; a JobManager turns
// that into a service. Submitted jobs queue under admission control, run
// concurrently on disjoint slices of one shared machine-wide TaskPool, and
// report per-sample progress through the RecordingObserver hook — the same
// code path whether the manager lives inside a one-shot `sops_run` batch
// invocation (one job slot, whole machine) or inside the `sopsd` daemon
// (several slots, jobs arriving over a socket).
//
// The three production-shaped concerns, and where they live:
//
//  - Thread budgeting: the jobs × samples × steps split. The manager owns
//    one TaskPool sized so that every job slot's share
//    (sim::resolve_job_threads) is a disjoint support::PoolSlice; a job
//    runs entirely inside its slot's slice and the slice returns to the
//    slot when the job finishes. No job can starve another of workers, and
//    within the job the familiar samples × steps resolution applies
//    unchanged — the budget is still split exactly once per job.
//
//  - Admission control: a job's recording is its memory. The projected
//    F·m·n payload is computed at submit; jobs whose backing would stay
//    resident (heap mode, or auto below its spill threshold) count against
//    JobLimits::memory_budget_bytes. A job that alone exceeds the budget
//    is rejected at submit with a named reason (spill to `frame_storage =
//    mapped` and it projects to ~zero resident); otherwise it queues until
//    the running jobs' resident total leaves room and a job slot is free.
//
//  - Cancellation: each job carries a support::CancelToken chained to the
//    manager's shutdown token. cancel() raises the job's token; the
//    per-step and per-sample poll points unwind the run via
//    sops::CancelledError, RAII reclaims spill files and returns the pool
//    slice, and a durable shard's manifest stays valid (exactly the synced
//    samples are marked). Raising shutdown_token() — signal-handler-safe —
//    cancels everything at once, which is how sops_run and sopsd translate
//    SIGINT/SIGTERM into a clean drain.
//
// Scheduling only, by construction: a job's recording and analysis are the
// same run_experiment / analyze_frame calls batch mode makes, on the same
// deterministic (seed, stream) grid — results are bitwise-identical to a
// solo batch run of the same config, whatever else ran alongside.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/analyzer.hpp"
#include "core/config_builder.hpp"
#include "core/streaming_analyzer.hpp"
#include "io/csv.hpp"
#include "support/cancel.hpp"
#include "support/executor.hpp"

namespace sops::core {

/// Lifecycle of a submitted job. Terminal states: kDone, kFailed,
/// kCancelled.
enum class JobState {
  kQueued,     ///< submitted, waiting for a slot and admission headroom
  kAdmitted,   ///< claimed by a job slot, about to start
  kRunning,    ///< samples simulating (and streaming out as they finish)
  kStreaming,  ///< simulation done; analysis tail still draining
  kDone,       ///< finished; outcome available via wait()
  kFailed,     ///< failed; wait() rethrows the named error
  kCancelled,  ///< cancelled; wait() throws sops::CancelledError
};

[[nodiscard]] const char* to_string(JobState state) noexcept;
[[nodiscard]] inline bool is_terminal(JobState state) noexcept {
  return state == JobState::kDone || state == JobState::kFailed ||
         state == JobState::kCancelled;
}

/// Machine-wide resource limits, fixed at construction.
struct JobLimits {
  /// Total thread budget shared by all concurrent jobs (0 = hardware
  /// concurrency). Split across job slots by sim::resolve_job_threads.
  std::size_t machine_threads = 0;
  /// How many jobs may run concurrently. Each slot owns a fixed disjoint
  /// slice of the pool for its lifetime, so admission never re-partitions
  /// running jobs.
  std::size_t job_slots = 2;
  /// Admission budget for *resident* recording footprints (heap-backed
  /// jobs; mapped/shard recordings project to ~zero). Default: unlimited —
  /// the in-process batch configuration. The daemon sets a real budget
  /// (its default mirrors the 256 MiB auto-spill threshold).
  std::size_t memory_budget_bytes = static_cast<std::size_t>(-1);
};

/// What to compute after (or while) a job's samples record.
enum class JobAnalysis {
  kNone,      ///< record only (sharded runs, merge inputs)
  kPostHoc,   ///< analyze_self_organization after the run completes
  kStreamed,  ///< StreamingAnalyzer rides the recording (daemon default)
};

/// Point-in-time view of a job, safe to copy out of the manager.
struct JobStatus {
  std::uint64_t id = 0;
  JobState state = JobState::kQueued;
  std::size_t samples_done = 0;    ///< includes resumed shard samples
  std::size_t samples_total = 0;   ///< local slots (shards: the slice)
  std::size_t payload_bytes = 0;   ///< projected F·m·n recording payload
  std::size_t resident_bytes = 0;  ///< what admission charges (0 = spills)
  std::string error;        ///< terminal kFailed/kCancelled reason
  std::string flush_error;  ///< first spill I/O error, live during the run
  bool analyzed = false;    ///< analysis finished (delta_mi is meaningful)
  double delta_mi = 0.0;    ///< headline ΔI once analyzed
};

/// One finished sample, announced from the sample workers (thread-safe
/// handlers required). `series` points at the live recording: the sample's
/// slots are final (flushed/synced), valid for the duration of the call.
struct JobSampleEvent {
  std::uint64_t job = 0;
  std::size_t local_sample = 0;
  std::size_t samples_done = 0;
  std::size_t samples_total = 0;
  std::optional<std::size_t> equilibrium_step;
  const EnsembleSeries* series = nullptr;
};

/// Optional per-job event hooks. Called outside the manager's lock, from
/// scheduler or sample-worker threads — handlers must be thread-safe and
/// must not call back into the manager's blocking APIs (wait).
struct JobEvents {
  std::function<void(const JobStatus&)> on_state_change;
  std::function<void(const JobSampleEvent&)> on_sample_done;
};

/// Per-submission options.
struct JobOptions {
  JobAnalysis analysis = JobAnalysis::kPostHoc;
  JobEvents events;
};

/// What wait() hands back for a completed job.
struct JobOutcome {
  EnsembleSeries series;
  std::optional<AnalysisResult> analysis;
};

/// The orchestration layer (see file comment). Thread-safe; one instance
/// per process or daemon.
class JobManager {
 public:
  explicit JobManager(JobLimits limits = {});
  /// Cancels every queued and running job, drains the slots, joins.
  ~JobManager();

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  [[nodiscard]] const JobLimits& limits() const noexcept { return limits_; }

  /// Admission-checks and enqueues a job. Throws sops::Error when the job
  /// can never be admitted (resident footprint above the memory budget);
  /// otherwise returns its id and the scheduler picks it up as soon as a
  /// slot and the budget allow.
  std::uint64_t submit(ConfiguredExperiment configured, JobOptions options = {});

  /// Requests cancellation: a queued job terminates immediately, a running
  /// one drains at its next poll point (a step boundary). Returns false if
  /// the id is unknown or the job already reached a terminal state.
  bool cancel(std::uint64_t id);

  /// Snapshot of one job / of every job (ascending id). Throws on an
  /// unknown id.
  [[nodiscard]] JobStatus status(std::uint64_t id) const;
  [[nodiscard]] std::vector<JobStatus> statuses() const;

  /// Blocks until the job is terminal, then returns its outcome (kDone) or
  /// throws — the job's named Error (kFailed) or sops::CancelledError
  /// (kCancelled). The outcome is handed out once; a second wait() on the
  /// same done job throws.
  JobOutcome wait(std::uint64_t id);

  /// The manager-wide cancellation root every job token chains to.
  /// request() is async-signal-safe — the SIGINT/SIGTERM handlers of
  /// sops_run and sopsd raise exactly this.
  [[nodiscard]] support::CancelToken& shutdown_token() noexcept {
    return shutdown_;
  }

  /// Projected recording payload of a config: F·m·n·sizeof(Vec2) over the
  /// job's local sample slots.
  [[nodiscard]] static std::size_t projected_payload_bytes(
      const ExperimentConfig& config);
  /// The slice of that payload that stays resident — what admission
  /// charges. Zero for shard-backed and mapped recordings, and for kAuto
  /// configs big enough to spill.
  [[nodiscard]] static std::size_t projected_resident_bytes(
      const ExperimentConfig& config);

 private:
  struct Job;

  void drive(std::size_t slot);
  void run_job(Job& job, std::size_t slot);
  void set_state(Job& job, JobState state);
  void note_sample(Job& job, std::size_t local_sample,
                   const EnsembleSeries& series);
  [[nodiscard]] JobStatus snapshot_locked(const Job& job) const;
  Job* find_locked(std::uint64_t id) noexcept;
  const Job* find_locked(std::uint64_t id) const noexcept;

  JobLimits limits_;
  support::CancelToken shutdown_;

  // The shared machine-wide pool and each slot's fixed slice of it.
  std::unique_ptr<support::TaskPool> pool_;
  std::vector<support::PoolSlice> slices_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;  // state changes, admissions, shutdown
  std::vector<std::unique_ptr<Job>> jobs_;  // append-only, ascending id
  std::vector<std::uint64_t> queue_;        // FIFO of queued ids
  std::size_t resident_bytes_ = 0;          // running jobs' charged total
  std::uint64_t next_id_ = 1;
  bool shutting_down_ = false;

  std::vector<std::thread> drivers_;  // one per job slot
};

/// CSV text of one recorded sample — header plus one row per
/// (frame, particle), max-precision positions. The daemon streams exactly
/// this per finished sample, and the parity tests serialize a batch run's
/// series through the same function, so "streamed recording == batch
/// recording" is a byte comparison.
[[nodiscard]] std::string sample_recording_csv(const EnsembleSeries& series,
                                               std::size_t local_sample);

/// The analysis-curve table `sops_run` writes as its CSV output — shared
/// with the daemon's curve streaming so both serialize identical bytes.
[[nodiscard]] io::CsvTable analysis_csv_table(const AnalysisResult& result,
                                              bool with_entropies);

/// One JobStatus as a single-line JSON object (the wire form of the
/// daemon's status report and per-job events).
[[nodiscard]] std::string job_status_json(const JobStatus& status);

}  // namespace sops::core
