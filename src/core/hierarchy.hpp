// Hierarchical (two-level) decomposition of self-organization (paper §3.1):
//
// "this definition also gives the opportunity to build hierarchies by
// considering coarse to fine grained observers, which then leads to a
// decomposition of self-organization."
//
// Level 1 groups particle observers by type (the paper's Fig. 11 level);
// level 2 splits each type's particles into spatial k-means clusters, so
// every within-type term decomposes again into between-cluster and
// within-cluster organization:
//
//   I(all) = I(types…) + Σ_t [ I(clusters of t…) + Σ_c I(within cluster c) ]
//
// Clusters are formed on the reference sample (row 0) of the aligned
// ensemble, consistent with the §5.3.1 mean-observer transport.
#pragma once

#include "align/ensemble.hpp"
#include "info/decomposition.hpp"

namespace sops::core {

/// One type's second-level split.
struct TypeLevelDecomposition {
  sim::TypeId type = 0;
  /// Eq. (5) over this type's particles grouped by spatial cluster;
  /// `total` is the type's within-type information from level 1's view.
  info::Decomposition by_cluster;
  /// Cluster sizes (particles per cluster), for reporting.
  std::vector<std::size_t> cluster_sizes;
};

/// The full two-level result.
struct HierarchicalDecomposition {
  /// Level 1: I(all) split into between-types + within-type terms.
  info::Decomposition by_type;
  /// Level 2: each type's within-type term split by spatial cluster.
  /// Types with fewer than two particles are omitted (nothing to split).
  std::vector<TypeLevelDecomposition> within_types;

  /// Σ of all leaf terms plus all between terms; equals `by_type.total`
  /// up to estimator bias (the tests bound the residual).
  [[nodiscard]] double reconstructed() const noexcept;
};

/// Computes the two-level decomposition of an aligned ensemble.
/// `clusters_per_type` bounds the level-2 split (clamped to the type size).
[[nodiscard]] HierarchicalDecomposition decompose_two_level(
    const align::AlignedEnsemble& ensemble, std::size_t clusters_per_type,
    const info::KsgOptions& options = {}, std::uint64_t cluster_seed = 0x5eed);

}  // namespace sops::core
