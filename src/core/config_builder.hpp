// Builds experiment configurations from key=value config files — the
// backend of the `sops_run` CLI. Kept in the library (not the tool) so the
// mapping is unit-testable.
//
// Recognized keys (all optional unless noted):
//
//   preset        fig3 | fig4 | fig5 | fig12 | control — start from a
//                 paper preset; remaining keys override its fields
//   force         spring | double_gaussian       (custom systems)
//   types         number of types l
//   particles     number of particles n
//   k, r, sigma, tau   either a single number (all pairs) or an l×l
//                 matrix with rows separated by ';'
//   rc            cut-off radius (number or 'inf')
//   neighbor      auto | all_pairs | cell_grid | delaunay | verlet
//   verlet_skin   extra candidate shell of neighbor = verlet (> 0, finite)
//   frame_storage heap | mapped | auto — backing of the recorded FrameStore
//                 (auto spills to a memory-mapped file once the projected
//                 recording crosses spill_threshold_mb)
//   spill_dir     directory mapped recordings spill into (default '.')
//   spill_threshold_mb   auto-spill threshold in MiB ('inf' = never)
//   steps, stride, samples, seed, dt, noise, init_radius, max_step
//   equilibrium_threshold, equilibrium_hold
//   analysis_k            KSG neighbor order
//   entropies, decomposition    booleans
//   kmeans_per_type, coarse_grain_above
#pragma once

#include "core/analyzer.hpp"
#include "io/config.hpp"

namespace sops::core {

/// A fully-specified run: the experiment plus what to compute on it.
struct ConfiguredExperiment {
  ExperimentConfig experiment;
  AnalysisOptions analysis;
};

/// Builds from a parsed config; throws sops::Error with a named key on any
/// inconsistency (wrong matrix shape, unknown enum value, …).
[[nodiscard]] ConfiguredExperiment build_experiment(const io::Config& config);

/// Keys this builder understands (the CLI warns about anything else).
[[nodiscard]] const std::vector<std::string>& known_config_keys();

}  // namespace sops::core
