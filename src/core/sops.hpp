// Umbrella header: the full public API of the sops library.
//
// Quickstart:
//
//   #include "core/sops.hpp"
//   using namespace sops;
//
//   auto config = core::presets::fig4_three_type_collective();
//   core::ExperimentConfig experiment(config);
//   experiment.samples = 200;
//   auto result = core::measure_experiment(experiment);
//   // result.points[i].multi_information is I(W₁⁽ᵗ⁾,…,W_n⁽ᵗ⁾) in bits
//   // result.self_organizing() applies the paper's verdict
#pragma once

#include "align/ensemble.hpp"
#include "align/icp.hpp"
#include "cluster/kmeans.hpp"
#include "core/analyzer.hpp"
#include "core/experiment.hpp"
#include "core/frame_store.hpp"
#include "core/hierarchy.hpp"
#include "core/config_builder.hpp"
#include "core/job_manager.hpp"
#include "core/presets.hpp"
#include "core/streaming_analyzer.hpp"
#include "geom/aabb.hpp"
#include "geom/cell_grid.hpp"
#include "geom/delaunay.hpp"
#include "geom/frame_view.hpp"
#include "geom/kdtree.hpp"
#include "geom/neighbor_backend.hpp"
#include "geom/rigid_transform.hpp"
#include "geom/vec2.hpp"
#include "geom/verlet_list.hpp"
#include "info/binning.hpp"
#include "info/decomposition.hpp"
#include "info/entropy.hpp"
#include "info/kde.hpp"
#include "info/neighbor_cache.hpp"
#include "info/transfer_entropy.hpp"
#include "info/ksg.hpp"
#include "io/ascii_chart.hpp"
#include "io/config.hpp"
#include "io/csv.hpp"
#include "io/frame_protocol.hpp"
#include "io/svg.hpp"
#include "rng/engine.hpp"
#include "rng/samplers.hpp"
#include "sim/asymmetric.hpp"
#include "sim/detectors.hpp"
#include "sim/generators.hpp"
#include "sim/observables.hpp"
#include "sim/parallel_policy.hpp"
#include "sim/simulation.hpp"
#include "sim/workspace.hpp"
