#include "core/analyzer.hpp"

#include <algorithm>
#include <optional>

#include "info/neighbor_cache.hpp"
#include "sim/parallel_policy.hpp"
#include "support/executor.hpp"

namespace sops::core {

double AnalysisResult::peak_delta_mi() const noexcept {
  if (points.empty()) return 0.0;
  double peak = points.front().multi_information;
  for (const TimePoint& p : points) {
    peak = std::max(peak, p.multi_information);
  }
  return peak - points.front().multi_information;
}

std::vector<double> AnalysisResult::steps() const {
  std::vector<double> out;
  out.reserve(points.size());
  for (const TimePoint& p : points) out.push_back(static_cast<double>(p.step));
  return out;
}

std::vector<double> AnalysisResult::mi_values() const {
  std::vector<double> out;
  out.reserve(points.size());
  for (const TimePoint& p : points) out.push_back(p.multi_information);
  return out;
}

FrameAnalysis analyze_frame(geom::FrameView frame,
                            const std::vector<sim::TypeId>& types,
                            std::size_t step, std::size_t frame_index,
                            bool coarse, const AnalysisOptions& options,
                            support::Executor& executor) {
  // The inner stages never fork on their own (threads = 1); every loop —
  // the alignment rows, the estimator's sample queries — dispatches on the
  // caller's executor. Neither affects results.
  align::EnsembleOptions ensemble_options = options.ensemble;
  ensemble_options.threads = 1;
  ensemble_options.executor = &executor;
  info::KsgOptions ksg = options.ksg;
  ksg.threads = 1;
  ksg.executor = &executor;

  align::AlignedEnsemble aligned =
      align::align_ensemble(frame, types, ensemble_options);
  if (coarse) {
    // Seeded per frame so frames are independent of evaluation order.
    rng::Xoshiro256 engine = rng::make_stream(
        options.kmeans_seed, static_cast<std::uint64_t>(frame_index));
    aligned =
        align::coarse_grain_ensemble(aligned, options.kmeans_per_type, engine);
  }

  // One subspace-tree cache serves every estimator call on this frame's
  // matrix (the estimators resolve their trees serially at entry, per the
  // cache's single-writer contract, so sharing it across the sequential
  // calls below is safe).
  std::optional<info::FrameNeighborCache> cache;
  if (options.reuse_neighbor_cache &&
      ksg.search == info::NeighborSearch::kBlockedTree) {
    cache.emplace(aligned.samples);
    ksg.cache = &*cache;
  }
  info::FrameNeighborCache* entropy_cache = cache ? &*cache : nullptr;

  FrameAnalysis out;
  out.observer_count = aligned.observer_count();
  TimePoint& point = out.point;
  point.step = step;
  point.multi_information =
      info::multi_information_ksg(aligned.samples, aligned.blocks, ksg);

  if (options.compute_entropies) {
    // Same lent executor as the KSG queries: the entropy curves ride the
    // persistent pool instead of running serially (or forking).
    point.joint_entropy =
        info::entropy_kl(aligned.samples, ksg.k, executor, entropy_cache);
    point.marginal_entropy_sum = 0.0;
    for (const info::Block& block : aligned.blocks) {
      point.marginal_entropy_sum += info::entropy_kl_block(
          aligned.samples, block, ksg.k, executor, entropy_cache);
    }
  }
  if (options.compute_decomposition) {
    sim::TypeId max_type = 0;
    for (const sim::TypeId t : aligned.block_types) {
      max_type = std::max(max_type, t);
    }
    const info::ObserverGrouping grouping = info::group_blocks_by_type(
        aligned.block_types, static_cast<std::size_t>(max_type) + 1);
    if (grouping.size() >= 2) {
      point.decomposition = info::decompose_multi_information(
          aligned.samples, aligned.blocks, grouping, ksg);
    } else {
      point.decomposition.total = point.multi_information;
      point.decomposition.between_groups = 0.0;
      point.decomposition.within_group = {point.multi_information};
    }
  }
  return out;
}

AnalysisResult analyze_self_organization(const EnsembleSeries& series,
                                         const AnalysisOptions& options) {
  support::expect(series.frame_count() >= 1, "analyze: empty series");
  support::expect(series.sample_count() >= options.ksg.k + 1,
                  "analyze: need more samples than the estimator's k");
  support::expect(series.particle_count() >= 2,
                  "analyze: need at least two particles");

  const std::size_t frame_count = series.frame_count();
  const bool coarse =
      series.particle_count() > options.coarse_grain_above;

  AnalysisResult result;
  result.coarse_grained = coarse;
  result.points.resize(frame_count);

  std::vector<std::size_t> observer_counts(frame_count, 0);

  // One pool for the whole analysis, split like the engine's sample × step
  // budget — literally: kHybrid's waste-minimizing search divides the
  // thread budget between frame chunks and each chunk's KSG estimator
  // (e.g. 8 threads over 5 frames → 4 frame workers × 2 KSG threads, not
  // 5 × 1 with 3 threads stranded). run_partitioned lends each frame chunk
  // its disjoint KSG slice; every frame — and within it every KSG call —
  // reuses the same parked workers, nothing forks per frame.
  const sim::ThreadBudget split = sim::resolve_parallel_policy(
      sim::ParallelPolicy::kHybrid, series.particle_count(), frame_count,
      options.threads);
  const std::size_t frame_workers = split.sample_threads;
  const std::size_t ksg_share = split.step_threads;
  support::TaskPool pool(frame_workers * ksg_share);

  auto frame_chunk = [&](std::size_t k, support::Executor& inner_executor) {
    const support::ChunkRange chunk =
        support::chunk_range(k, frame_count, frame_workers);
    // The alignment loop shares the slice: a KSG-heavy split (e.g. 1 frame
    // worker × 7 estimator threads when 7 threads meet 5 frames) still
    // aligns each frame's samples in parallel.
    for (std::size_t f = chunk.begin; f < chunk.end; ++f) {
      FrameAnalysis frame = analyze_frame(series.frames[f], series.types,
                                          series.frame_steps[f], f, coarse,
                                          options, inner_executor);
      observer_counts[f] = frame.observer_count;
      result.points[f] = std::move(frame.point);
    }
  };
  pool.run_partitioned(frame_workers, ksg_share, frame_chunk);

  result.observer_count = observer_counts.front();
  return result;
}

AnalysisResult measure_experiment(const ExperimentConfig& config,
                                  const AnalysisOptions& options) {
  const EnsembleSeries series = run_experiment(config);
  return analyze_self_organization(series, options);
}

}  // namespace sops::core
