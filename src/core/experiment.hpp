// Ensemble experiments: m independent stochastic runs of one collective
// (paper §5.1). The ensemble at a fixed recorded step is the sample set
// z⁽ᵗ⁾ from which the self-organization measure is estimated.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/frame_store.hpp"
#include "sim/simulation.hpp"

namespace sops::support {
class PoolSlice;
}  // namespace sops::support

namespace sops::core {

/// Opt-in durable sharding of an experiment (CLI: `sops_run --shard k/N
/// --out path [--resume]`). A non-empty `path` turns the recording into a
/// persist-mode shard: the FrameStore is backed by exactly that file (kept
/// on destruction, crash-survivable) with a `<path>.manifest` sidecar that
/// records the run's identity and a per-sample completion bitmap. The
/// shard owns the sample slots chunk_range(index, samples, count) — slot
/// ranges of distinct indices are disjoint by construction, so N processes
/// can run one ensemble concurrently and merge_shards() assembles the
/// result. With `resume`, an existing matching shard is reopened and its
/// completed samples are skipped; (seed, stream) fully determine each
/// sample's trajectory, so the combined recording is bitwise-identical to
/// an uninterrupted run — which makes resume double as crash recovery.
struct ShardOptions {
  std::string path;        ///< shard data file; empty = sharding off
  std::size_t index = 0;   ///< k ∈ [0, count)
  std::size_t count = 1;   ///< N — how many shards split the ensemble
  bool resume = false;     ///< reopen a matching shard, skip completed work
};

struct EnsembleSeries;

/// Hook into the recording fan-out, so a consumer (the streaming analyzer,
/// a progress meter) can start working on recorded frames while later
/// samples still simulate.
class RecordingObserver {
 public:
  virtual ~RecordingObserver() = default;

  /// Called once, on run_experiment's calling thread, after the series'
  /// store and recording grid exist but before any sample simulates. The
  /// series outlives the call only as run_experiment's local — observers
  /// that keep working after this call must copy what they need (frame
  /// views into the store stay valid: the store's backing allocation is
  /// stable across the series' later move to the caller). An exception
  /// thrown here propagates out of run_experiment before any work starts.
  virtual void on_recording_started(const EnsembleSeries& series) = 0;

  /// Frames [begin_frame, end_frame) of sample `local_sample` are now
  /// fully written into the store. Called from the sample workers — one
  /// frame at a time as each is recorded, concurrently across samples —
  /// and once per resumed sample with the full frame range before the
  /// fan-out starts. Must be thread-safe and must not throw (a throw
  /// would abort the worker fan-out).
  virtual void on_frames_recorded(std::size_t begin_frame,
                                  std::size_t end_frame,
                                  std::size_t local_sample) = 0;

  /// Sample `local_sample` is fully finished: every frame recorded, its
  /// equilibrium step stored in the series, and — for spilled or durable
  /// recordings — its extents flushed (scratch) or synced and marked
  /// complete in the manifest (shard). This is the per-sample result
  /// boundary the job layer streams on: the sample's slots in the store
  /// are final and safe to read concurrently with later samples. Called
  /// from the sample workers; must be thread-safe and must not throw.
  /// Not replayed for resumed samples (their completing run announced
  /// them); default no-op so frame-level observers are unaffected.
  virtual void on_sample_recorded(std::size_t local_sample) {
    (void)local_sample;
  }
};

/// Specification of a full experiment: one simulation config replicated over
/// m RNG streams. Everything is deterministic in (config, samples).
struct ExperimentConfig {
  explicit ExperimentConfig(sim::SimulationConfig simulation_config)
      : simulation(std::move(simulation_config)) {}

  sim::SimulationConfig simulation;
  std::size_t samples = 500;  ///< m
  std::size_t threads = 0;    ///< total worker-thread budget (0 = auto)
  /// Backing of the recorded FrameStore (config keys `frame_storage`,
  /// `spill_dir`, `spill_threshold_mb`). The recording grid F·m·n is known
  /// before the first step, so a mapped store is created at full size
  /// upfront and each sample's extents are flushed to disk — and dropped
  /// from the resident set — as soon as the sample finishes, off the
  /// sample fan-out via the chunk's lent step executor. Purely a storage
  /// choice: recorded positions are bitwise-identical in every mode.
  FrameStoreOptions storage{};
  /// How the thread budget is split between ensemble samples and each
  /// sample's intra-step drift sharding. kAuto keeps paper-sized ensembles
  /// (m ≥ threads) fully sample-parallel and moves the budget inside the
  /// step for single huge collectives; the split is resolved once here, so
  /// sample workers never nest further fan-outs. Any choice yields bitwise-
  /// identical results — the policy only redistributes the same work.
  sim::ParallelPolicy parallel = sim::ParallelPolicy::kAuto;
  /// Durable sharding / checkpoint-restart (see ShardOptions). Off by
  /// default; when on, `storage` spill settings are ignored in favor of
  /// the shard file.
  ShardOptions shard{};
  /// Optional recording observer (not owned; must outlive the run):
  /// notified as frames land in the store, so analysis can overlap the
  /// remaining simulation (see core/streaming_analyzer.hpp). Never affects
  /// the recording itself.
  RecordingObserver* observer = nullptr;
  /// Cooperative cancellation (not owned; may be null). Polled at every
  /// sample boundary and once per simulation step inside each sample:
  /// a raised token makes run_experiment throw sops::CancelledError after
  /// the in-flight step, unwinding through the normal cleanup path — a
  /// scratch spill file is unlinked, a durable shard keeps a valid
  /// manifest listing exactly the samples whose bytes were synced, and
  /// the pool (own or lent) is released.
  const support::CancelToken* cancel = nullptr;
  /// Execution slice of a shared machine-wide TaskPool (not owned; may be
  /// null). When set, the sample × step fan-out runs entirely inside this
  /// slice — the caller's thread plus the slice's workers — instead of a
  /// pool created for the run, so several experiments can run concurrently
  /// on one pool under per-job budgets (see core::JobManager). The thread
  /// budget resolves against the slice's width; `threads` may narrow it
  /// further but never widens it. Purely a scheduling choice: recordings
  /// are bitwise-identical with and without a shared pool.
  const support::PoolSlice* pool = nullptr;
};

/// Aggregated neighbor-list rebuild accounting of one experiment: `steps`
/// counts every per-step backend refresh across all samples, `rebuilds` the
/// ones that actually re-indexed. Only NeighborMode::kVerletSkin skips
/// refreshes, so for every other mode rebuilds == steps (and the skip rate
/// is 0) — benches and tests assert the Verlet opt-in's skip rate here.
struct NeighborRebuildStats {
  std::size_t rebuilds = 0;
  std::size_t steps = 0;
  /// Verlet partial-rebuild accounting (zero unless the opt-in is on):
  /// passes that re-enumerated runaway rows instead of fully rebuilding,
  /// and the rows re-enumerated across them.
  std::size_t partial_rebuilds = 0;
  std::size_t partial_rows = 0;
  /// The Verlet shell at the end of the slowest-converging worker chunk
  /// (equals the configured skin unless adaptation is on); 0 for non-Verlet
  /// modes.
  double final_skin = 0.0;

  [[nodiscard]] double skip_rate() const noexcept {
    return steps > 0
               ? 1.0 - static_cast<double>(rebuilds) / static_cast<double>(steps)
               : 0.0;
  }
};

/// The recorded ensemble: frames[f][s] is sample s at step frame_steps[f],
/// stored as one flat [frame][sample][particle] block (see FrameStore).
struct EnsembleSeries {
  std::vector<sim::TypeId> types;
  std::vector<std::size_t> frame_steps;
  FrameStore frames;
  /// Per-sample equilibrium step (if the criterion held during the run).
  std::vector<std::optional<std::size_t>> equilibrium_steps;
  /// Rebuild accounting summed over all samples (see NeighborRebuildStats).
  /// Only covers samples simulated *this* run — resumed samples were
  /// accounted by the run that computed them.
  NeighborRebuildStats rebuild_stats;
  /// First global sample slot of this series: 0 for whole-ensemble runs,
  /// the shard's slot_begin for sharded ones (frames/equilibrium_steps are
  /// then indexed by `global slot − slot_begin`).
  std::size_t slot_begin = 0;
  /// Samples found complete in the shard manifest and skipped (resume /
  /// crash recovery); 0 for fresh runs.
  std::size_t resumed_samples = 0;

  [[nodiscard]] std::size_t frame_count() const noexcept {
    return frames.frame_count();
  }
  [[nodiscard]] std::size_t sample_count() const noexcept {
    return frames.sample_count();
  }
  [[nodiscard]] std::size_t particle_count() const noexcept {
    return types.size();
  }

  /// Fraction of samples whose equilibrium criterion held by the last step.
  [[nodiscard]] double equilibrium_fraction() const noexcept;
};

/// Runs the experiment: samples stream s ∈ [0, m) are simulated in parallel
/// and recorded straight into the flat frame store (the recording grid is
/// known upfront, so every sample streams into disjoint pre-sized slots —
/// no per-trajectory staging copy). One TaskPool sized to the resolved
/// budget serves the whole experiment: sample chunks run on it, each chunk
/// reuses one SimulationWorkspace for all its samples, and each chunk's
/// per-step drift dispatch is lent a disjoint slice of the same pool — no
/// per-step thread creation anywhere. Results are bitwise-independent of
/// the thread count.
///
/// With ExperimentConfig::shard engaged the run covers only the shard's
/// slot range, records into the durable shard file, marks each sample
/// complete in the manifest once its bytes are on disk, and — on resume —
/// validates the existing manifest and skips completed samples. Throws
/// sops::Error when a resume target does not match the config (different
/// grid, seed, config hash, or slot range) or when durability cannot be
/// guaranteed (shard file unmappable, sync failure).
[[nodiscard]] EnsembleSeries run_experiment(const ExperimentConfig& config);

}  // namespace sops::core
