// Ensemble experiments: m independent stochastic runs of one collective
// (paper §5.1). The ensemble at a fixed recorded step is the sample set
// z⁽ᵗ⁾ from which the self-organization measure is estimated.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/frame_store.hpp"
#include "sim/simulation.hpp"

namespace sops::core {

/// Specification of a full experiment: one simulation config replicated over
/// m RNG streams. Everything is deterministic in (config, samples).
struct ExperimentConfig {
  explicit ExperimentConfig(sim::SimulationConfig simulation_config)
      : simulation(std::move(simulation_config)) {}

  sim::SimulationConfig simulation;
  std::size_t samples = 500;  ///< m
  std::size_t threads = 0;    ///< total worker-thread budget (0 = auto)
  /// Backing of the recorded FrameStore (config keys `frame_storage`,
  /// `spill_dir`, `spill_threshold_mb`). The recording grid F·m·n is known
  /// before the first step, so a mapped store is created at full size
  /// upfront and each sample's extents are flushed to disk — and dropped
  /// from the resident set — as soon as the sample finishes, off the
  /// sample fan-out via the chunk's lent step executor. Purely a storage
  /// choice: recorded positions are bitwise-identical in every mode.
  FrameStoreOptions storage{};
  /// How the thread budget is split between ensemble samples and each
  /// sample's intra-step drift sharding. kAuto keeps paper-sized ensembles
  /// (m ≥ threads) fully sample-parallel and moves the budget inside the
  /// step for single huge collectives; the split is resolved once here, so
  /// sample workers never nest further fan-outs. Any choice yields bitwise-
  /// identical results — the policy only redistributes the same work.
  sim::ParallelPolicy parallel = sim::ParallelPolicy::kAuto;
};

/// Aggregated neighbor-list rebuild accounting of one experiment: `steps`
/// counts every per-step backend refresh across all samples, `rebuilds` the
/// ones that actually re-indexed. Only NeighborMode::kVerletSkin skips
/// refreshes, so for every other mode rebuilds == steps (and the skip rate
/// is 0) — benches and tests assert the Verlet opt-in's skip rate here.
struct NeighborRebuildStats {
  std::size_t rebuilds = 0;
  std::size_t steps = 0;

  [[nodiscard]] double skip_rate() const noexcept {
    return steps > 0
               ? 1.0 - static_cast<double>(rebuilds) / static_cast<double>(steps)
               : 0.0;
  }
};

/// The recorded ensemble: frames[f][s] is sample s at step frame_steps[f],
/// stored as one flat [frame][sample][particle] block (see FrameStore).
struct EnsembleSeries {
  std::vector<sim::TypeId> types;
  std::vector<std::size_t> frame_steps;
  FrameStore frames;
  /// Per-sample equilibrium step (if the criterion held during the run).
  std::vector<std::optional<std::size_t>> equilibrium_steps;
  /// Rebuild accounting summed over all samples (see NeighborRebuildStats).
  NeighborRebuildStats rebuild_stats;

  [[nodiscard]] std::size_t frame_count() const noexcept {
    return frames.frame_count();
  }
  [[nodiscard]] std::size_t sample_count() const noexcept {
    return frames.sample_count();
  }
  [[nodiscard]] std::size_t particle_count() const noexcept {
    return types.size();
  }

  /// Fraction of samples whose equilibrium criterion held by the last step.
  [[nodiscard]] double equilibrium_fraction() const noexcept;
};

/// Runs the experiment: samples stream s ∈ [0, m) are simulated in parallel
/// and recorded straight into the flat frame store (the recording grid is
/// known upfront, so every sample streams into disjoint pre-sized slots —
/// no per-trajectory staging copy). One TaskPool sized to the resolved
/// budget serves the whole experiment: sample chunks run on it, each chunk
/// reuses one SimulationWorkspace for all its samples, and each chunk's
/// per-step drift dispatch is lent a disjoint slice of the same pool — no
/// per-step thread creation anywhere. Results are bitwise-independent of
/// the thread count.
[[nodiscard]] EnsembleSeries run_experiment(const ExperimentConfig& config);

}  // namespace sops::core
