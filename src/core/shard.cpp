#include "core/shard.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

#include "io/mapped_buffer.hpp"
#include "support/error.hpp"

namespace sops::core {
namespace {

// FNV-1a 64. A content hash, not a cryptographic one: it guards against
// *mistakes* (resuming a shard with the wrong config file, merging shards
// of different experiments), not adversaries.
struct Fnv1a {
  std::uint64_t state = 0xcbf29ce484222325ull;

  void bytes(const void* data, std::size_t count) noexcept {
    const auto* cursor = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < count; ++i) {
      state ^= cursor[i];
      state *= 0x100000001b3ull;
    }
  }
  void u64(std::uint64_t value) noexcept { bytes(&value, sizeof(value)); }
  void f64(double value) noexcept { u64(std::bit_cast<std::uint64_t>(value)); }
};

void hash_matrix(Fnv1a& hash, const sim::SymmetricMatrix& matrix) {
  const std::size_t types = matrix.types();
  hash.u64(types);
  for (std::size_t a = 0; a < types; ++a) {
    for (std::size_t b = a; b < types; ++b) hash.f64(matrix(a, b));
  }
}

std::string manifest_path_for(const std::string& data_path) {
  return data_path + ".manifest";
}

[[noreturn]] void merge_fail(const std::string& shard, const std::string& what) {
  throw Error("merge: shard '" + shard + "': " + what);
}

// The header fields two shards of one experiment must share (everything
// except the slot range and completion state).
bool same_experiment(const io::ShardManifest& a, const io::ShardManifest& b) {
  return a.frames == b.frames && a.samples_total == b.samples_total &&
         a.particles == b.particles && a.master_seed == b.master_seed &&
         a.config_hash == b.config_hash && a.frame_steps == b.frame_steps;
}

}  // namespace

std::uint64_t experiment_config_hash(const ExperimentConfig& config) {
  const sim::SimulationConfig& simulation = config.simulation;
  Fnv1a hash;
  hash.u64(static_cast<std::uint64_t>(simulation.model.kind()));
  hash_matrix(hash, simulation.model.k_matrix());
  hash_matrix(hash, simulation.model.r_matrix());
  hash_matrix(hash, simulation.model.sigma_matrix());
  hash_matrix(hash, simulation.model.tau_matrix());
  hash.u64(simulation.types.size());
  for (const sim::TypeId type : simulation.types) hash.u64(type);
  hash.f64(simulation.cutoff_radius);
  hash.f64(simulation.init_disc_radius);
  hash.f64(simulation.integrator.dt);
  hash.f64(simulation.integrator.noise_variance);
  hash.f64(simulation.integrator.max_step);
  hash.u64(simulation.steps);
  hash.u64(simulation.record_stride);
  // Equilibrium parameters never move positions, but their *outputs*
  // (equilibrium_steps) are recorded in the manifest — shards disagreeing
  // on them would merge inconsistent per-sample diagnostics.
  hash.f64(simulation.equilibrium.threshold);
  hash.u64(simulation.equilibrium.hold_steps);
  hash.u64(simulation.track_equilibrium ? 1 : 0);
  hash.u64(simulation.seed);
  hash.u64(config.samples);
  return hash.state;
}

io::ShardManifest expected_shard_manifest(const ExperimentConfig& config) {
  support::expect(config.shard.count >= 1 &&
                      config.shard.index < config.shard.count,
                  "shard: index must lie in [0, count)");
  support::expect(config.shard.count <= config.samples,
                  "shard: more shards than samples");
  const support::ChunkRange slots = support::chunk_range(
      config.shard.index, config.samples, config.shard.count);
  const std::vector<std::size_t> grid = sim::recording_steps(
      config.simulation.steps, config.simulation.record_stride);

  io::ShardManifest manifest;
  manifest.frames = grid.size();
  manifest.samples_total = config.samples;
  manifest.particles = config.simulation.types.size();
  manifest.slot_begin = slots.begin;
  manifest.slot_end = slots.end;
  manifest.master_seed = config.simulation.seed;
  manifest.config_hash = experiment_config_hash(config);
  manifest.frame_steps.assign(grid.begin(), grid.end());
  manifest.equilibrium_steps.assign(manifest.slots(), io::kNoEquilibriumStep);
  manifest.completed.assign(io::ShardManifest::words_for(manifest.slots()), 0);
  return manifest;
}

MergeResult merge_shards(const std::vector<std::string>& shard_paths,
                         const std::string& out_path) {
  support::expect(!shard_paths.empty(), "merge: no shards given");
  support::expect(!out_path.empty(), "merge: output path must be non-empty");

  struct Shard {
    std::string path;
    io::ShardManifest manifest;
  };
  std::vector<Shard> shards;
  shards.reserve(shard_paths.size());
  for (const std::string& path : shard_paths) {
    Shard shard{path, io::ShardManifestFile::load(manifest_path_for(path))};
    if (!shard.manifest.all_complete()) {
      merge_fail(path, "incomplete — " +
                           std::to_string(shard.manifest.complete_count()) +
                           " of " + std::to_string(shard.manifest.slots()) +
                           " samples recorded; finish or --resume it first");
    }
    shards.push_back(std::move(shard));
  }

  const io::ShardManifest& reference = shards.front().manifest;
  for (const Shard& shard : shards) {
    if (!same_experiment(reference, shard.manifest)) {
      merge_fail(shard.path,
                 "does not match '" + shards.front().path +
                     "' (different dims, frame grid, seed, or config hash)");
    }
  }

  // Slot ranges must tile [0, samples_total) exactly: sort, then check
  // each begins where the previous ended.
  std::sort(shards.begin(), shards.end(), [](const Shard& a, const Shard& b) {
    return a.manifest.slot_begin < b.manifest.slot_begin;
  });
  std::uint64_t cursor = 0;
  for (const Shard& shard : shards) {
    if (shard.manifest.slot_begin < cursor) {
      merge_fail(shard.path, "slot range overlaps the previous shard");
    }
    if (shard.manifest.slot_begin > cursor) {
      merge_fail(shard.path,
                 "slot gap: samples [" + std::to_string(cursor) + ", " +
                     std::to_string(shard.manifest.slot_begin) +
                     ") are in no shard");
    }
    cursor = shard.manifest.slot_end;
  }
  if (cursor != reference.samples_total) {
    merge_fail(shards.back().path,
               "slot ranges cover only " + std::to_string(cursor) + " of " +
                   std::to_string(reference.samples_total) + " samples");
  }

  const std::size_t frames = reference.frames;
  const std::size_t particles = reference.particles;
  const std::size_t samples_total = reference.samples_total;
  const std::size_t row_bytes = particles * sizeof(geom::Vec2);
  const std::size_t out_bytes = frames * samples_total * row_bytes;

  io::MappedBuffer out(out_path, out_bytes, io::MappedBuffer::OnFailure::kEmpty,
                       io::MappedBuffer::Lifetime::kPersist);
  if (!out.mapped()) {
    throw Error("merge: cannot create '" + out_path +
                "': " + out.fallback_reason());
  }

  io::ShardManifest merged = reference;
  merged.slot_begin = 0;
  merged.slot_end = samples_total;
  merged.equilibrium_steps.assign(samples_total, io::kNoEquilibriumStep);
  merged.completed.assign(io::ShardManifest::words_for(samples_total), 0);

  auto* out_bytes_ptr = static_cast<std::byte*>(out.data());
  for (const Shard& shard : shards) {
    const std::size_t local_samples = shard.manifest.slots();
    const std::size_t in_bytes = frames * local_samples * row_bytes;
    // open_existing validates the data file's size against its manifest's
    // geometry — a truncated or foreign file fails here, named.
    io::MappedBuffer in = io::MappedBuffer::open_existing(
        shard.path, in_bytes, io::MappedBuffer::OnFailure::kEmpty);
    if (!in.mapped()) {
      merge_fail(shard.path, "cannot map data file: " + in.fallback_reason());
    }
    in.advise_sequential();
    const auto* in_ptr = static_cast<const std::byte*>(in.data());
    // Frame f of the merged store holds the shard's rows at sample offset
    // slot_begin — one contiguous extent per frame, disjoint across shards.
    for (std::size_t f = 0; f < frames; ++f) {
      std::memcpy(out_bytes_ptr +
                      (f * samples_total + shard.manifest.slot_begin) *
                          row_bytes,
                  in_ptr + f * local_samples * row_bytes,
                  local_samples * row_bytes);
    }
    for (std::size_t s = 0; s < local_samples; ++s) {
      merged.equilibrium_steps[shard.manifest.slot_begin + s] =
          shard.manifest.equilibrium_steps[s];
      merged.set_complete(shard.manifest.slot_begin + s);
    }
  }

  // Destroying `out` (persist) MS_SYNCs the payload; write the manifest
  // after so a crash mid-merge leaves no complete-looking manifest over a
  // half-copied file.
  { io::MappedBuffer finished = std::move(out); }
  (void)io::ShardManifestFile::create(manifest_path_for(out_path), merged);

  MergeResult result;
  result.data_path = out_path;
  result.manifest_path = manifest_path_for(out_path);
  result.shard_count = shards.size();
  result.samples_total = samples_total;
  result.payload_bytes = out_bytes;
  return result;
}

}  // namespace sops::core
