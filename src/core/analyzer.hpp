// The paper's measurement pipeline: ensemble → shape space → observer
// multi-information over time, with optional entropy curves, per-type
// decomposition (Eq. 5), and the §5.3.1 k-means coarse-graining for large
// collectives.
//
// Self-organization, by the paper's definition (§3.1), is an *increase* of
// I(W₁⁽ᵗ⁾,…,W_n⁽ᵗ⁾) over the run; `AnalysisResult::delta_mi()` is that
// headline statistic and `self_organizing()` thresholds it.
#pragma once

#include <cstdint>
#include <vector>

#include "align/ensemble.hpp"
#include "core/experiment.hpp"
#include "info/decomposition.hpp"
#include "info/entropy.hpp"
#include "info/ksg.hpp"

namespace sops::core {

/// What to compute per recorded time step.
struct AnalysisOptions {
  info::KsgOptions ksg{};            ///< estimator settings (k = 4 default)
  align::EnsembleOptions ensemble{}; ///< alignment settings
  /// Collectives with more particles than this are coarse-grained to
  /// per-type k-means mean observers (paper §6 uses 60).
  std::size_t coarse_grain_above = 60;
  std::size_t kmeans_per_type = 4;   ///< clusters per type when coarse-graining
  std::uint64_t kmeans_seed = 0x5eed;
  bool compute_entropies = false;     ///< joint + marginal KL entropy curves
  bool compute_decomposition = false; ///< per-type Eq. 5 decomposition
  std::size_t threads = 0;            ///< across time steps (0 = auto)
  /// Build one FrameNeighborCache per analyzed frame and share its subspace
  /// kd-trees across that frame's estimator calls (the KSG multi-information,
  /// the entropy curves, and the decomposition's total term). Purely a
  /// throughput knob: every estimate is bitwise-identical either way.
  bool reuse_neighbor_cache = true;
};

/// Measurements at one recorded step.
struct TimePoint {
  std::size_t step = 0;
  double multi_information = 0.0;      ///< I(W₁,…,W_n) in bits
  double joint_entropy = 0.0;          ///< h(W) (bits), if requested
  double marginal_entropy_sum = 0.0;   ///< Σ h(W_i) (bits), if requested
  info::Decomposition decomposition;   ///< Eq. 5 terms, if requested
};

/// Full analysis output.
struct AnalysisResult {
  std::vector<TimePoint> points;
  std::size_t observer_count = 0;  ///< n (or l·k when coarse-grained)
  bool coarse_grained = false;

  /// ΔI between the last and first recorded step (the Fig. 8 statistic).
  [[nodiscard]] double delta_mi() const noexcept {
    if (points.size() < 2) return 0.0;
    return points.back().multi_information - points.front().multi_information;
  }
  /// Largest I over the run minus the initial I.
  [[nodiscard]] double peak_delta_mi() const noexcept;
  /// The paper's verdict: ΔI above `threshold` bits counts as
  /// self-organization.
  [[nodiscard]] bool self_organizing(double threshold = 0.5) const noexcept {
    return delta_mi() > threshold;
  }

  /// The multi-information curve as (steps, values) for charting.
  [[nodiscard]] std::vector<double> steps() const;
  [[nodiscard]] std::vector<double> mi_values() const;
};

/// One frame's measurement — the shared body of the post-hoc analyzer and
/// the streaming consumer (core/streaming_analyzer.hpp).
struct FrameAnalysis {
  TimePoint point;
  std::size_t observer_count = 0;
};

/// Analyzes a single recorded frame: align to shape space, optionally
/// coarse-grain (seeded by `frame_index`, so results do not depend on
/// evaluation order), then estimate per `options`. All inner loops dispatch
/// on `executor`; `options.threads` is ignored here. Deterministic in
/// (frame, types, step, frame_index, coarse, options) — the executor's
/// width never affects any estimate. The frame view is consumed before
/// returning, so callers may hand out views into storage they later move.
[[nodiscard]] FrameAnalysis analyze_frame(geom::FrameView frame,
                                          const std::vector<sim::TypeId>& types,
                                          std::size_t step,
                                          std::size_t frame_index, bool coarse,
                                          const AnalysisOptions& options,
                                          support::Executor& executor);

/// Runs the full measurement pipeline on a recorded ensemble.
///
/// Per frame: align to shape space (centroid + ICP + same-type permutation),
/// optionally coarse-grain, then estimate. One TaskPool of `threads` width
/// serves the whole analysis: frames are processed in parallel on it, and
/// when the frame axis cannot absorb the budget (fewer frames than
/// threads), each frame chunk lends its leftover slice to the KSG
/// estimator's sample queries — no per-frame thread creation and no
/// oversubscription. Deterministic in (series, options): neither the frame
/// partition nor the estimator's width affects any estimate.
[[nodiscard]] AnalysisResult analyze_self_organization(
    const EnsembleSeries& series, const AnalysisOptions& options = {});

/// Convenience: run + analyze in one call.
[[nodiscard]] AnalysisResult measure_experiment(const ExperimentConfig& config,
                                                const AnalysisOptions& options = {});

}  // namespace sops::core
