#include "core/config_builder.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/presets.hpp"
#include "support/error.hpp"

namespace sops::core {
namespace {

sim::SymmetricMatrix matrix_from_config(const io::Config& config,
                                        const std::string& key,
                                        std::size_t types, double fallback) {
  const auto rows = config.get_matrix(key);
  if (rows.empty()) {
    // Maybe a scalar.
    const double value = config.get_double(key, fallback);
    return sim::SymmetricMatrix(types, value);
  }
  if (rows.size() == 1 && rows[0].size() == 1) {
    return sim::SymmetricMatrix(types, rows[0][0]);
  }
  if (rows.size() != types) {
    throw Error("config: matrix '" + key + "' has " +
                std::to_string(rows.size()) + " rows, expected " +
                std::to_string(types));
  }
  for (const auto& row : rows) {
    if (row.size() != types) {
      throw Error("config: matrix '" + key + "' is not square");
    }
  }
  return sim::SymmetricMatrix::from_full(rows);
}

sim::SimulationConfig base_simulation(const io::Config& config) {
  const std::string preset = config.get_string("preset", "");
  if (!preset.empty()) {
    if (preset == "fig3") return presets::fig3_single_type_grid();
    if (preset == "fig4") return presets::fig4_three_type_collective();
    if (preset == "fig5") return presets::fig5_single_type_rings();
    if (preset == "fig12") return presets::fig12_enclosed_structure();
    if (preset == "control") {
      return presets::noninteracting_control(config.get_size("particles", 20));
    }
    throw Error("config: unknown preset '" + preset + "'");
  }

  // Custom system.
  const std::size_t types = config.get_size("types", 1);
  if (types == 0) throw Error("config: 'types' must be positive");
  sim::ForceLawKind kind = sim::ForceLawKind::kSpring;
  const std::string force = config.get_string("force", "spring");
  if (force == "spring") {
    kind = sim::ForceLawKind::kSpring;
  } else if (force == "double_gaussian") {
    kind = sim::ForceLawKind::kDoubleGaussian;
  } else {
    throw Error("config: unknown force '" + force + "'");
  }

  sim::InteractionModel model(
      kind, matrix_from_config(config, "k", types, 1.0),
      matrix_from_config(config, "r", types, 1.0),
      matrix_from_config(config, "sigma", types, 1.0),
      matrix_from_config(config, "tau", types, 1.0));
  sim::SimulationConfig simulation(std::move(model));
  simulation.types =
      sim::evenly_distributed_types(config.get_size("particles", 20), types);
  return simulation;
}

}  // namespace

ConfiguredExperiment build_experiment(const io::Config& config) {
  sim::SimulationConfig simulation = base_simulation(config);

  simulation.cutoff_radius =
      config.get_double("rc", simulation.cutoff_radius);
  simulation.init_disc_radius =
      config.get_double("init_radius", simulation.init_disc_radius);
  simulation.steps = config.get_size("steps", simulation.steps);
  simulation.record_stride =
      config.get_size("stride", simulation.record_stride);
  simulation.seed = config.get_size("seed", simulation.seed);
  simulation.integrator.dt = config.get_double("dt", simulation.integrator.dt);
  simulation.integrator.noise_variance =
      config.get_double("noise", simulation.integrator.noise_variance);
  simulation.integrator.max_step =
      config.get_double("max_step", simulation.integrator.max_step);
  simulation.equilibrium.threshold = config.get_double(
      "equilibrium_threshold", simulation.equilibrium.threshold);
  simulation.equilibrium.hold_steps =
      config.get_size("equilibrium_hold", simulation.equilibrium.hold_steps);

  const std::string neighbor = config.get_string("neighbor", "auto");
  if (neighbor == "auto") {
    simulation.neighbor_mode = sim::NeighborMode::kAuto;
  } else if (neighbor == "all_pairs") {
    simulation.neighbor_mode = sim::NeighborMode::kAllPairs;
  } else if (neighbor == "cell_grid") {
    simulation.neighbor_mode = sim::NeighborMode::kCellGrid;
  } else if (neighbor == "delaunay") {
    simulation.neighbor_mode = sim::NeighborMode::kDelaunay;
  } else if (neighbor == "verlet") {
    simulation.neighbor_mode = sim::NeighborMode::kVerletSkin;
  } else {
    throw Error("config: unknown neighbor mode '" + neighbor + "'");
  }
  simulation.verlet_skin =
      config.get_double("verlet_skin", simulation.verlet_skin);
  // Validate the opt-in here, where the error can name the key: a zero or
  // negative skin reaches the backend as a list that never skips a rebuild
  // (or, below zero, misses pairs), and the Verlet grid build needs a
  // finite positive cut-off.
  if (!(simulation.verlet_skin > 0.0) ||
      !std::isfinite(simulation.verlet_skin)) {
    throw Error("config: 'verlet_skin' must be positive and finite, got '" +
                config.get_string("verlet_skin", "") + "'");
  }
  if (simulation.neighbor_mode == sim::NeighborMode::kVerletSkin &&
      !(simulation.cutoff_radius > 0.0 &&
        std::isfinite(simulation.cutoff_radius))) {
    throw Error(
        "config: 'neighbor = verlet' needs a finite positive cut-off "
        "radius 'rc'");
  }
  simulation.verlet_skin_adapt =
      config.get_bool("verlet_skin_adapt", simulation.verlet_skin_adapt);
  simulation.verlet_skin_min =
      config.get_double("verlet_skin_min", simulation.verlet_skin_min);
  simulation.verlet_skin_max =
      config.get_double("verlet_skin_max", simulation.verlet_skin_max);
  if (!(simulation.verlet_skin_min > 0.0) ||
      !std::isfinite(simulation.verlet_skin_min) ||
      !std::isfinite(simulation.verlet_skin_max) ||
      simulation.verlet_skin_max < simulation.verlet_skin_min) {
    throw Error(
        "config: 'verlet_skin_min'/'verlet_skin_max' must be finite, "
        "positive, and ordered");
  }
  simulation.verlet_partial_rebuild = config.get_bool(
      "verlet_partial_rebuild", simulation.verlet_partial_rebuild);

  ConfiguredExperiment configured{ExperimentConfig(std::move(simulation)), {}};
  configured.experiment.samples = config.get_size("samples", 200);

  const std::string storage = config.get_string("frame_storage", "heap");
  if (storage == "heap") {
    configured.experiment.storage.mode = StorageMode::kHeap;
  } else if (storage == "mapped") {
    configured.experiment.storage.mode = StorageMode::kMapped;
  } else if (storage == "auto") {
    configured.experiment.storage.mode = StorageMode::kAuto;
  } else {
    throw Error("config: unknown frame_storage mode '" + storage + "'");
  }
  configured.experiment.storage.spill_dir =
      config.get_string("spill_dir", configured.experiment.storage.spill_dir);
  const double threshold_mb = config.get_double(
      "spill_threshold_mb",
      static_cast<double>(configured.experiment.storage.auto_spill_bytes) /
          (1024.0 * 1024.0));
  if (!(threshold_mb >= 0.0)) {
    throw Error("config: 'spill_threshold_mb' must be non-negative");
  }
  const double threshold_bytes = threshold_mb * 1024.0 * 1024.0;
  // "inf" (or any value past 2^64) means "never auto-spill".
  configured.experiment.storage.auto_spill_bytes =
      threshold_bytes >= 18446744073709551616.0
          ? std::numeric_limits<std::size_t>::max()
          : static_cast<std::size_t>(threshold_bytes);

  configured.analysis.ksg.k = config.get_size("analysis_k", 4);
  configured.analysis.compute_entropies =
      config.get_bool("entropies", false);
  configured.analysis.compute_decomposition =
      config.get_bool("decomposition", false);
  configured.analysis.kmeans_per_type = config.get_size("kmeans_per_type", 4);
  configured.analysis.coarse_grain_above =
      config.get_size("coarse_grain_above", 60);
  return configured;
}

const std::vector<std::string>& known_config_keys() {
  static const std::vector<std::string> keys{
      "preset", "force", "types", "particles", "k", "r", "sigma", "tau",
      "rc", "neighbor", "verlet_skin", "verlet_skin_adapt", "verlet_skin_min",
      "verlet_skin_max", "verlet_partial_rebuild",
      "steps", "stride", "samples", "seed",
      "frame_storage", "spill_dir", "spill_threshold_mb",
      "dt", "noise",
      "init_radius", "max_step", "equilibrium_threshold", "equilibrium_hold",
      "analysis_k", "entropies", "decomposition", "kmeans_per_type",
      "coarse_grain_above", "output"};
  return keys;
}

}  // namespace sops::core
