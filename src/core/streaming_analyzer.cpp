#include "core/streaming_analyzer.hpp"

#include <chrono>
#include <utility>

#include "support/executor.hpp"

namespace sops::core {

StreamingAnalyzer::StreamingAnalyzer(AnalysisOptions options,
                                     const support::CancelToken* cancel)
    : options_(std::move(options)), cancel_(cancel) {}

StreamingAnalyzer::~StreamingAnalyzer() { abort(); }

void StreamingAnalyzer::on_recording_started(const EnsembleSeries& series) {
  support::expect(!started_,
                  "StreamingAnalyzer: already observing a recording");
  // The same preconditions analyze_self_organization enforces — checked
  // here, on the producer's calling thread, so a misconfigured analysis
  // fails before any sample simulates.
  support::expect(series.frame_count() >= 1, "analyze: empty series");
  support::expect(series.sample_count() >= options_.ksg.k + 1,
                  "analyze: need more samples than the estimator's k");
  support::expect(series.particle_count() >= 2,
                  "analyze: need at least two particles");

  frame_count_ = series.frame_count();
  samples_ = series.sample_count();
  types_ = series.types;
  frame_steps_ = series.frame_steps;
  coarse_ = series.particle_count() > options_.coarse_grain_above;

  // Frame views into the store, captured now: the store's backing
  // allocation is stable across the series' later move to the caller, so
  // the views stay valid until finish()/abort().
  frames_.clear();
  frames_.reserve(frame_count_);
  for (std::size_t f = 0; f < frame_count_; ++f) {
    frames_.push_back(series.frames[f]);
  }

  arrivals_ = std::make_unique<std::atomic<std::size_t>[]>(frame_count_);
  points_.assign(frame_count_, TimePoint{});
  observer_counts_.assign(frame_count_, 0);
  ready_.clear();
  next_ready_ = 0;
  frames_done_ = 0;
  stop_ = false;
  error_ = nullptr;
  started_ = true;
  consumer_ = std::thread([this] { consume(); });
}

void StreamingAnalyzer::on_frames_recorded(std::size_t begin_frame,
                                           std::size_t end_frame,
                                           std::size_t /*local_sample*/) {
  for (std::size_t f = begin_frame; f < end_frame; ++f) {
    const std::size_t arrived =
        arrivals_[f].fetch_add(1, std::memory_order_acq_rel) + 1;
    if (arrived == samples_) {
      // Exactly one sample observes the completing count, so the enqueue
      // is single-shot per frame. Samples record frames in grid order,
      // which makes the queue ascending in f (see file comment).
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        ready_.push_back(f);
      }
      cv_.notify_all();
    }
  }
}

void StreamingAnalyzer::consume() {
  try {
    // The consumer owns the whole analysis thread budget: frames become
    // ready one at a time, so instead of the post-hoc frames × estimator
    // split, every worker serves the current frame's inner loops (the
    // alignment rows and the estimators' sample-query chunks).
    support::TaskPool pool(options_.threads);
    support::Executor& executor = pool.executor();
    while (true) {
      std::size_t f = 0;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        const auto frame_ready = [&] {
          return stop_ || next_ready_ < ready_.size();
        };
        if (cancel_ == nullptr) {
          cv_.wait(lock, frame_ready);
        } else {
          // Nothing notifies the condition variable when a token is
          // raised (request() is signal-safe, so it cannot lock), so a
          // cancellation-aware consumer polls on a short timeout while
          // idle.
          while (!frame_ready()) {
            support::CancelToken::check(cancel_,
                                        "streaming analysis cancelled");
            cv_.wait_for(lock, std::chrono::milliseconds(50), frame_ready);
          }
        }
        if (stop_) return;
        f = ready_[next_ready_++];
      }
      // Between-frames poll point: a cancelled drain stops after the
      // in-flight frame, and the CancelledError surfaces out of finish()
      // via the consumer's normal error path.
      support::CancelToken::check(cancel_, "streaming analysis cancelled");
      FrameAnalysis frame = analyze_frame(frames_[f], types_, frame_steps_[f],
                                          f, coarse_, options_, executor);
      observer_counts_[f] = frame.observer_count;
      points_[f] = std::move(frame.point);
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++frames_done_;
        if (frames_done_ == frame_count_) {
          cv_.notify_all();
          return;
        }
      }
    }
  } catch (...) {
    const std::lock_guard<std::mutex> lock(mutex_);
    error_ = std::current_exception();
    cv_.notify_all();
  }
}

AnalysisResult StreamingAnalyzer::finish() {
  support::expect(started_, "StreamingAnalyzer::finish: no recording started");
  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] {
      return error_ != nullptr || frames_done_ == frame_count_;
    });
  }
  if (consumer_.joinable()) consumer_.join();
  started_ = false;
  frames_.clear();
  if (error_ != nullptr) {
    std::exception_ptr error = std::exchange(error_, nullptr);
    std::rethrow_exception(error);
  }

  AnalysisResult result;
  result.coarse_grained = coarse_;
  result.points = std::move(points_);
  result.observer_count = observer_counts_.front();
  return result;
}

void StreamingAnalyzer::abort() noexcept {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  if (consumer_.joinable()) consumer_.join();
  started_ = false;
  frames_.clear();
  error_ = nullptr;
}

AnalysisResult measure_experiment_streamed(const ExperimentConfig& config,
                                           const AnalysisOptions& options) {
  StreamingAnalyzer analyzer(options);
  ExperimentConfig streamed = config;
  streamed.observer = &analyzer;
  try {
    // The series must outlive finish(): the consumer reads frame views
    // into its store until the last frame is analyzed.
    const EnsembleSeries series = run_experiment(streamed);
    return analyzer.finish();
  } catch (...) {
    analyzer.abort();
    throw;
  }
}

}  // namespace sops::core
