#include "core/presets.hpp"

namespace sops::core::presets {
namespace {

// Shared experiment-wide seeds: one namespace per figure so changing the
// sample count of one bench never shifts another's draws.
constexpr std::uint64_t kFig4Seed = 0x0F04;
constexpr std::uint64_t kFig5Seed = 0x0F05;
constexpr std::uint64_t kFig3Seed = 0x0F03;
constexpr std::uint64_t kFig8Seed = 0x0F08;
constexpr std::uint64_t kFig9Seed = 0x0F09;
constexpr std::uint64_t kFig12Seed = 0x0F12;

}  // namespace

sim::SimulationConfig fig4_three_type_collective() {
  sim::InteractionModel model(sim::ForceLawKind::kSpring, 3,
                              sim::PairParams{1.0, 1.0, 1.0, 1.0});
  const double r[3][3] = {
      {2.5, 5.0, 4.0}, {5.0, 2.5, 2.0}, {4.0, 2.0, 3.5}};
  for (std::size_t a = 0; a < 3; ++a) {
    for (std::size_t b = a; b < 3; ++b) model.set_r(a, b, r[a][b]);
  }
  sim::SimulationConfig config(std::move(model));
  config.types = sim::evenly_distributed_types(50, 3);
  config.cutoff_radius = 5.0;
  config.init_disc_radius = 5.0;
  config.steps = 250;
  config.seed = kFig4Seed;
  return config;
}

sim::SimulationConfig fig5_single_type_rings() {
  sim::InteractionModel model(sim::ForceLawKind::kSpring, 1,
                              sim::PairParams{1.0, 2.0, 1.0, 1.0});
  sim::SimulationConfig config(std::move(model));
  config.types = sim::evenly_distributed_types(20, 1);
  config.cutoff_radius = sim::kUnboundedRadius;  // r_c > 2·r_αα
  config.init_disc_radius = 3.0;
  config.steps = 250;
  config.seed = kFig5Seed;
  return config;
}

sim::SimulationConfig fig3_single_type_grid() {
  // Literal F² (σ = 1 < τ): decaying repulsion; the collective spreads into
  // a regular disc-shaped grid and keeps expanding slowly (paper §6).
  sim::InteractionModel model(sim::ForceLawKind::kDoubleGaussian, 1,
                              sim::PairParams{5.0, 1.0, 1.0, 4.0});
  sim::SimulationConfig config(std::move(model));
  config.types = sim::evenly_distributed_types(40, 1);
  config.cutoff_radius = 5.0;
  config.init_disc_radius = 3.0;
  config.steps = 250;
  config.seed = kFig3Seed;
  return config;
}

sim::SimulationConfig fig9_random_types(std::size_t type_count,
                                        double cutoff_radius,
                                        std::uint64_t matrix_index) {
  rng::Xoshiro256 engine = rng::make_stream(kFig9Seed, matrix_index);
  sim::RandomModelRanges ranges;
  ranges.k_min = ranges.k_max = 1.0;  // caption: k_αβ = 1
  ranges.r_min = 2.0;
  ranges.r_max = 8.0;  // caption: r_αβ ∈ [2, 8]
  sim::SimulationConfig config(
      sim::random_spring_model(type_count, ranges, engine));
  config.types = sim::evenly_distributed_types(20, type_count);
  config.cutoff_radius = cutoff_radius;
  config.init_disc_radius = 5.0;
  config.steps = 250;
  config.seed = kFig9Seed ^ (matrix_index << 8);
  return config;
}

sim::SimulationConfig fig8_f2_random_types(std::size_t particle_count,
                                           std::size_t type_count,
                                           std::uint64_t matrix_index) {
  rng::Xoshiro256 engine =
      rng::make_stream(kFig8Seed, matrix_index * 64 + type_count);
  sim::RandomModelRanges ranges;
  // The caption fixes only the preferred-distance range; k is drawn from
  // the paper's general k_αβ ∈ [1, 10] (§4.1) — F²'s bounded scaling needs
  // k well above 1 for the drift to beat the noise within 250 steps.
  ranges.k_min = 2.0;
  ranges.k_max = 8.0;
  ranges.r_min = 1.0;
  ranges.r_max = 5.0;  // caption: r_αβ ∈ [1, 5]
  ranges.tau_min = 1.0;
  ranges.tau_max = 3.0;
  sim::SimulationConfig config(
      sim::random_double_gaussian_model(type_count, ranges, engine));
  config.types = sim::evenly_distributed_types(particle_count, type_count);
  config.cutoff_radius = 10.0;
  config.init_disc_radius = 4.0;
  config.steps = 250;
  config.seed = kFig8Seed ^ (matrix_index << 8) ^ (type_count << 20);
  return config;
}

sim::SimulationConfig fig12_enclosed_structure() {
  sim::InteractionModel model(sim::ForceLawKind::kSpring, 2,
                              sim::PairParams{1.0, 1.0, 1.0, 1.0});
  // Differential-adhesion engulfment: type 0 packs tightly (small r_00,
  // strong k), type 1 spreads loosely (large r_11), and the cross distance
  // is intermediate — type 1 cannot enter the dense core and wraps around
  // it as an enclosing ring (Fig. 12 middle/right).
  model.set_r(0, 0, 1.0);
  model.set_k(0, 0, 4.0);
  model.set_r(1, 1, 3.0);
  model.set_r(0, 1, 2.0);
  sim::SimulationConfig config(std::move(model));
  config.types = sim::evenly_distributed_types(40, 2);
  config.cutoff_radius = 6.0;
  config.init_disc_radius = 4.0;
  config.steps = 250;
  config.seed = kFig12Seed;
  return config;
}

sim::SimulationConfig noninteracting_control(std::size_t n) {
  sim::InteractionModel model(sim::ForceLawKind::kSpring, 1,
                              sim::PairParams{0.0, 1.0, 1.0, 1.0});
  sim::SimulationConfig config(std::move(model));
  config.types = sim::evenly_distributed_types(n, 1);
  config.cutoff_radius = 5.0;
  config.init_disc_radius = 5.0;
  config.steps = 250;
  config.seed = 0xC0917801;
  return config;
}

}  // namespace sops::core::presets
