#include "core/experiment.hpp"

#include <algorithm>

#include "geom/verlet_list.hpp"
#include "support/executor.hpp"
#include "support/error.hpp"

namespace sops::core {

double EnsembleSeries::equilibrium_fraction() const noexcept {
  if (equilibrium_steps.empty()) return 0.0;
  std::size_t reached = 0;
  for (const auto& step : equilibrium_steps) {
    if (step.has_value()) ++reached;
  }
  return static_cast<double>(reached) /
         static_cast<double>(equilibrium_steps.size());
}

EnsembleSeries run_experiment(const ExperimentConfig& config) {
  support::expect(config.samples >= 1, "run_experiment: need at least 1 sample");
  support::expect(!config.simulation.stop_at_equilibrium,
                  "run_experiment: ensembles need a fixed recording grid; "
                  "disable stop_at_equilibrium");
  support::expect(!config.simulation.types.empty(),
                  "run_experiment: no particles");

  const std::size_t m = config.samples;
  const std::size_t n = config.simulation.types.size();

  EnsembleSeries series;
  series.types = config.simulation.types;
  series.frame_steps = sim::recording_steps(config.simulation.steps,
                                            config.simulation.record_stride);
  series.frames =
      FrameStore(series.frame_steps.size(), m, n, config.storage);
  series.equilibrium_steps.assign(m, std::nullopt);

  // The thread budget is allocated exactly once, before any fan-out:
  // sample workers receive a fixed intra-step share, so parallelism cannot
  // nest beyond sample_threads × step_threads ≤ threads live workers.
  const sim::ThreadBudget budget =
      sim::resolve_parallel_policy(config.parallel, n, m, config.threads);
  const std::size_t sample_workers = budget.sample_threads;  // ≤ m by resolution
  const std::size_t step_share = budget.step_threads;

  // One pool for the whole experiment, sized to the full budget.
  // run_partitioned lends sample chunk k a disjoint helper slice for its
  // per-step drift dispatches while the sample fan-out runs on the rest, so
  // nested dispatches never contend for a worker and the live-thread count
  // never exceeds the budget. One workspace per sample chunk, reused across
  // the chunk's whole run of samples: the neighbor backend and drift buffer
  // warm up on the first sample and every later sample steps
  // allocation-free.
  // Per-chunk rebuild accounting, merged after the fan-out: every worker
  // owns its slot, so no synchronization is needed.
  std::vector<NeighborRebuildStats> chunk_stats(sample_workers);

  support::TaskPool pool(sample_workers * step_share);
  pool.run_partitioned(
      sample_workers, step_share,
      [&](std::size_t k, support::Executor& step_executor) {
        const support::ChunkRange chunk =
            support::chunk_range(k, m, sample_workers);
        sim::SimulationWorkspace workspace;
        workspace.lend_executor(&step_executor);
        sim::SimulationConfig sample_config = config.simulation;
        // Recorded for introspection; the lent executor's width is what the
        // workspace actually uses.
        sample_config.parallel_policy = sim::ParallelPolicy::kWithinStep;
        sample_config.threads = step_share;
        for (std::size_t s = chunk.begin; s < chunk.end; ++s) {
          sample_config.stream = s;
          const sim::StreamedRun run = sim::run_simulation_streamed(
              sample_config, workspace,
              [&](std::size_t f, std::size_t step,
                  geom::PositionLanes positions) {
                // The store was pre-sized from recording_steps(); a frame
                // outside that grid must fail here, not write out of bounds.
                support::expect(f < series.frame_steps.size() &&
                                    step == series.frame_steps[f],
                                "run_experiment: recording grid diverged");
                const auto slot = series.frames.sample_slot(f, s);
                for (std::size_t i = 0; i < positions.size(); ++i) {
                  slot[i] = positions[i];
                }
              });
          support::expect(run.frame_steps == series.frame_steps,
                          "run_experiment: recording grids diverged");
          series.equilibrium_steps[s] = run.equilibrium_step;
          // Spilled stores: the sample's extents (one per frame — disjoint
          // file ranges across samples, mirroring the disjoint sample_slot
          // writes) are complete, so push them to disk and drop their pages
          // from the resident set before the next sample dirties more.
          // Sharded over the chunk's lent step executor — idle between
          // samples — to keep the flush off the sample fan-out. No-op on
          // heap backing.
          series.frames.flush_samples(s, s + 1, &step_executor);
        }
        // The workspace is chunk-local, so the Verlet backend's lifetime
        // stats are exactly this chunk's totals. Every other backend
        // re-indexes each of the chunk's (steps + 1) drift evaluations.
        if (const geom::VerletListBackend* verlet = workspace.verlet_backend()) {
          chunk_stats[k].rebuilds = verlet->stats().builds;
          chunk_stats[k].steps = verlet->stats().steps;
        } else {
          const std::size_t evals =
              (chunk.end - chunk.begin) * (config.simulation.steps + 1);
          chunk_stats[k].rebuilds = evals;
          chunk_stats[k].steps = evals;
        }
      });

  for (const NeighborRebuildStats& stats : chunk_stats) {
    series.rebuild_stats.rebuilds += stats.rebuilds;
    series.rebuild_stats.steps += stats.steps;
  }
  // Recording finished: whoever consumes the series next (the analyzer's
  // frame-by-frame pass) reads the spilled pages back front to back.
  series.frames.advise_sequential_reads();
  return series;
}

}  // namespace sops::core
