#include "core/experiment.hpp"

#include <algorithm>
#include <filesystem>

#include "core/shard.hpp"
#include "geom/verlet_list.hpp"
#include "io/shard_manifest.hpp"
#include "support/error.hpp"
#include "support/executor.hpp"

namespace sops::core {
namespace {

// Compares the reopened manifest against what this config would produce,
// field by field, so a wrong --resume target fails with the actual
// discrepancy instead of a generic "mismatch".
void validate_resume_manifest(const io::ShardManifest& found,
                              const io::ShardManifest& expected,
                              const std::string& path) {
  const auto reject = [&](const std::string& what) {
    throw Error("resume: shard '" + path + "' " + what +
                " — it records a different experiment");
  };
  if (found.frames != expected.frames ||
      found.frame_steps != expected.frame_steps) {
    reject("has a different recording grid");
  }
  if (found.samples_total != expected.samples_total) {
    reject("was recorded for " + std::to_string(found.samples_total) +
           " samples, config says " + std::to_string(expected.samples_total));
  }
  if (found.particles != expected.particles) {
    reject("holds " + std::to_string(found.particles) +
           " particles per sample, config says " +
           std::to_string(expected.particles));
  }
  if (found.slot_begin != expected.slot_begin ||
      found.slot_end != expected.slot_end) {
    reject("owns sample slots [" + std::to_string(found.slot_begin) + ", " +
           std::to_string(found.slot_end) + "), this shard index owns [" +
           std::to_string(expected.slot_begin) + ", " +
           std::to_string(expected.slot_end) + ")");
  }
  if (found.master_seed != expected.master_seed) {
    reject("was recorded under master seed " +
           std::to_string(found.master_seed));
  }
  if (found.config_hash != expected.config_hash) {
    reject("has config hash " + std::to_string(found.config_hash) +
           ", config hashes to " + std::to_string(expected.config_hash));
  }
}

}  // namespace

double EnsembleSeries::equilibrium_fraction() const noexcept {
  if (equilibrium_steps.empty()) return 0.0;
  std::size_t reached = 0;
  for (const auto& step : equilibrium_steps) {
    if (step.has_value()) ++reached;
  }
  return static_cast<double>(reached) /
         static_cast<double>(equilibrium_steps.size());
}

EnsembleSeries run_experiment(const ExperimentConfig& config) {
  support::expect(config.samples >= 1, "run_experiment: need at least 1 sample");
  support::expect(!config.simulation.stop_at_equilibrium,
                  "run_experiment: ensembles need a fixed recording grid; "
                  "disable stop_at_equilibrium");
  support::expect(!config.simulation.types.empty(),
                  "run_experiment: no particles");
  const bool sharded = !config.shard.path.empty();
  support::expect(sharded || (config.shard.index == 0 &&
                              config.shard.count == 1 && !config.shard.resume),
                  "run_experiment: shard index/count/resume need shard.path");

  const std::size_t n = config.simulation.types.size();

  // The shard's slot slice of the ensemble; the whole ensemble when
  // sharding is off. Local sample s of this run is global slot
  // slots.begin + s — the value fed to SimulationConfig::stream, which is
  // all that distinguishes samples, so any partition of the slots yields
  // the same trajectories.
  if (sharded) {
    support::expect(config.shard.count >= 1 &&
                        config.shard.index < config.shard.count,
                    "run_experiment: shard index must lie in [0, count)");
    support::expect(config.shard.count <= config.samples,
                    "run_experiment: more shards than samples");
  }
  const support::ChunkRange slots =
      sharded ? support::chunk_range(config.shard.index, config.samples,
                                     config.shard.count)
              : support::ChunkRange{0, config.samples};
  const std::size_t m_local = slots.end - slots.begin;

  EnsembleSeries series;
  series.types = config.simulation.types;
  series.frame_steps = sim::recording_steps(config.simulation.steps,
                                            config.simulation.record_stride);
  series.slot_begin = slots.begin;
  series.equilibrium_steps.assign(m_local, std::nullopt);

  // Durable shard state: the manifest file (created fresh, or reopened and
  // validated on resume) plus the set of samples it already records.
  io::ShardManifestFile manifest;
  if (sharded) {
    io::ShardManifest expected = expected_shard_manifest(config);
    const std::string manifest_path = config.shard.path + ".manifest";
    const bool reopen =
        config.shard.resume && std::filesystem::exists(manifest_path) &&
        std::filesystem::exists(config.shard.path);
    FrameStoreOptions store_options;
    store_options.shard_path = config.shard.path;
    store_options.open_existing = reopen;
    if (reopen) {
      manifest = io::ShardManifestFile::open(manifest_path);
      validate_resume_manifest(manifest.manifest(), expected,
                               config.shard.path);
      series.frames = FrameStore(series.frame_steps.size(), m_local, n,
                                 store_options);
    } else {
      // Fresh shard: the data file first (its O_EXCL refuses to clobber an
      // existing recording whose manifest was lost), the manifest second —
      // a crash between the two leaves a zero-completion state that a
      // later --resume simply cannot reopen (no manifest), prompting a
      // clean restart.
      series.frames = FrameStore(series.frame_steps.size(), m_local, n,
                                 store_options);
      manifest = io::ShardManifestFile::create(manifest_path,
                                               std::move(expected));
    }
    for (std::size_t local = 0; local < m_local; ++local) {
      if (!manifest.manifest().is_complete(local)) continue;
      ++series.resumed_samples;
      const std::uint64_t equilibrium =
          manifest.manifest().equilibrium_steps[local];
      if (equilibrium != io::kNoEquilibriumStep) {
        series.equilibrium_steps[local] =
            static_cast<std::size_t>(equilibrium);
      }
    }
  } else {
    series.frames =
        FrameStore(series.frame_steps.size(), m_local, n, config.storage);
  }

  // The store and grid exist: let the observer set up, then hand it every
  // sample a resumed shard already holds (their bytes are durable in the
  // mapped file, so their frames are as readable as freshly recorded ones).
  if (config.observer != nullptr) {
    config.observer->on_recording_started(series);
    if (sharded) {
      for (std::size_t local = 0; local < m_local; ++local) {
        if (manifest.manifest().is_complete(local)) {
          config.observer->on_frames_recorded(0, series.frame_steps.size(),
                                              local);
        }
      }
    }
  }

  // Local indices still to simulate: everything on a fresh run, the
  // cleared manifest bits on a resume. Completed samples' bytes are
  // already in the mapped shard file — skipping them is what makes resume
  // crash-recovery, and (seed, stream) determinism makes the combination
  // bitwise-identical to an uninterrupted run.
  std::vector<std::size_t> pending;
  pending.reserve(m_local);
  for (std::size_t local = 0; local < m_local; ++local) {
    if (!sharded || !manifest.manifest().is_complete(local)) {
      pending.push_back(local);
    }
  }

  if (!pending.empty()) {
    // The thread budget is allocated exactly once, before any fan-out:
    // sample workers receive a fixed intra-step share, so parallelism
    // cannot nest beyond sample_threads × step_threads ≤ threads live
    // workers. Sized to the *pending* count — a nearly-complete resume
    // should not spin up workers with nothing to run. With a shared-pool
    // slice the budget is the slice's width (narrowed further by
    // config.threads if set): the experiment's whole fan-out must fit the
    // workers its job was lent.
    std::size_t thread_budget = config.threads;
    if (config.pool != nullptr) {
      thread_budget = thread_budget == 0
                          ? config.pool->width()
                          : std::min(thread_budget, config.pool->width());
    }
    const sim::ThreadBudget budget = sim::resolve_parallel_policy(
        config.parallel, n, pending.size(), thread_budget);
    const std::size_t sample_workers = budget.sample_threads;
    const std::size_t step_share = budget.step_threads;

    // One pool slice for the whole experiment, sized to the full budget:
    // the caller's own pool normally, the lent shared-pool slice under a
    // JobManager. run_partitioned lends sample chunk k a disjoint helper
    // sub-slice for its per-step drift dispatches while the sample fan-out
    // runs on the rest, so nested dispatches never contend for a worker
    // and the live-thread count never exceeds the budget. One workspace
    // per sample chunk, reused across the chunk's whole run of samples:
    // the neighbor backend and drift buffer warm up on the first sample
    // and every later sample steps allocation-free.
    // Per-chunk rebuild accounting, merged after the fan-out: every worker
    // owns its slot, so no synchronization is needed.
    std::vector<NeighborRebuildStats> chunk_stats(sample_workers);

    std::optional<support::TaskPool> own_pool;
    if (config.pool == nullptr) {
      own_pool.emplace(sample_workers * step_share);
    }
    const support::PoolSlice slice = config.pool != nullptr
                                         ? *config.pool
                                         : support::slice_all(*own_pool);
    slice.run_partitioned(
        sample_workers, step_share,
        [&](std::size_t k, support::Executor& step_executor) {
          const support::ChunkRange chunk =
              support::chunk_range(k, pending.size(), sample_workers);
          sim::SimulationWorkspace workspace;
          workspace.lend_executor(&step_executor);
          sim::SimulationConfig sample_config = config.simulation;
          // Recorded for introspection; the lent executor's width is what
          // the workspace actually uses.
          sample_config.parallel_policy = sim::ParallelPolicy::kWithinStep;
          sample_config.threads = step_share;
          sample_config.cancel = config.cancel;
          for (std::size_t p = chunk.begin; p < chunk.end; ++p) {
            // The sample-boundary poll point; the per-step poll inside
            // run_simulation_streamed bounds the in-sample latency.
            support::CancelToken::check(config.cancel,
                                        "run_experiment: cancelled");
            const std::size_t local = pending[p];
            sample_config.stream = slots.begin + local;
            const sim::StreamedRun run = sim::run_simulation_streamed(
                sample_config, workspace,
                [&](std::size_t f, std::size_t step,
                    geom::PositionLanes positions) {
                  // The store was pre-sized from recording_steps(); a frame
                  // outside that grid must fail here, not write out of
                  // bounds.
                  support::expect(f < series.frame_steps.size() &&
                                      step == series.frame_steps[f],
                                  "run_experiment: recording grid diverged");
                  const auto slot = series.frames.sample_slot(f, local);
                  for (std::size_t i = 0; i < positions.size(); ++i) {
                    slot[i] = positions[i];
                  }
                  if (config.observer != nullptr) {
                    config.observer->on_frames_recorded(f, f + 1, local);
                  }
                });
            support::expect(run.frame_steps == series.frame_steps,
                            "run_experiment: recording grids diverged");
            series.equilibrium_steps[local] = run.equilibrium_step;
            if (sharded) {
              // Durability order is the crash-safety invariant: the
              // sample's extents go to disk (MS_SYNC), *then* its manifest
              // bit flips. A crash anywhere leaves either an unmarked
              // sample (redone on resume, bitwise the same) or a fully
              // durable one — never a marked sample with lost bytes.
              if (!series.frames.sync_samples(local, local + 1,
                                              &step_executor)) {
                throw Error("run_experiment: cannot sync shard sample " +
                            std::to_string(slots.begin + local) + " to '" +
                            config.shard.path +
                            "': " + series.frames.flush_error());
              }
              const auto equilibrium = run.equilibrium_step;
              manifest.mark_complete(
                  local, equilibrium.has_value()
                             ? std::optional<std::uint64_t>(*equilibrium)
                             : std::nullopt);
            } else {
              // Spilled scratch stores: the sample's extents (one per frame
              // — disjoint file ranges across samples, mirroring the
              // disjoint sample_slot writes) are complete, so push them to
              // disk and drop their pages from the resident set before the
              // next sample dirties more. Sharded over the chunk's lent
              // step executor — idle between samples — to keep the flush
              // off the sample fan-out. No-op on heap backing.
              series.frames.flush_samples(local, local + 1, &step_executor);
            }
            if (config.observer != nullptr) {
              // After the durability step (sync + manifest bit for shards,
              // flush for scratch spill): the sample the observer is told
              // about is exactly as final as the store claims.
              config.observer->on_sample_recorded(local);
            }
          }
          // The workspace is chunk-local, so the Verlet backend's lifetime
          // stats are exactly this chunk's totals. Every other backend
          // re-indexes each of the chunk's (steps + 1) drift evaluations.
          if (const geom::VerletListBackend* verlet =
                  workspace.verlet_backend()) {
            chunk_stats[k].rebuilds = verlet->stats().builds;
            chunk_stats[k].steps = verlet->stats().steps;
            chunk_stats[k].partial_rebuilds = verlet->stats().partial_builds;
            chunk_stats[k].partial_rows = verlet->stats().partial_rows;
            chunk_stats[k].final_skin = verlet->skin();
          } else {
            const std::size_t evals =
                (chunk.end - chunk.begin) * (config.simulation.steps + 1);
            chunk_stats[k].rebuilds = evals;
            chunk_stats[k].steps = evals;
          }
        });

    for (const NeighborRebuildStats& stats : chunk_stats) {
      series.rebuild_stats.rebuilds += stats.rebuilds;
      series.rebuild_stats.steps += stats.steps;
      series.rebuild_stats.partial_rebuilds += stats.partial_rebuilds;
      series.rebuild_stats.partial_rows += stats.partial_rows;
      // "Final" across chunks: the widest shell still in play — under
      // adaptation that is the chunk whose samples tripped hardest.
      series.rebuild_stats.final_skin =
          std::max(series.rebuild_stats.final_skin, stats.final_skin);
    }
  }
  // Recording finished: whoever consumes the series next (the analyzer's
  // frame-by-frame pass) reads the spilled pages back front to back.
  series.frames.advise_sequential_reads();
  return series;
}

}  // namespace sops::core
