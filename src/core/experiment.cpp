#include "core/experiment.hpp"

#include "support/parallel_for.hpp"

namespace sops::core {

double EnsembleSeries::equilibrium_fraction() const noexcept {
  if (equilibrium_steps.empty()) return 0.0;
  std::size_t reached = 0;
  for (const auto& step : equilibrium_steps) {
    if (step.has_value()) ++reached;
  }
  return static_cast<double>(reached) /
         static_cast<double>(equilibrium_steps.size());
}

EnsembleSeries run_experiment(const ExperimentConfig& config) {
  support::expect(config.samples >= 1, "run_experiment: need at least 1 sample");
  support::expect(!config.simulation.stop_at_equilibrium,
                  "run_experiment: ensembles need a fixed recording grid; "
                  "disable stop_at_equilibrium");

  const std::size_t m = config.samples;
  std::vector<sim::Trajectory> trajectories(m);

  support::parallel_for(
      0, m,
      [&](std::size_t s) {
        sim::SimulationConfig sample_config = config.simulation;
        sample_config.stream = s;
        trajectories[s] = sim::run_simulation(sample_config);
      },
      config.threads);

  EnsembleSeries series;
  series.types = config.simulation.types;
  series.frame_steps = trajectories.front().frame_steps;
  const std::size_t frame_count = series.frame_steps.size();
  for (const sim::Trajectory& trajectory : trajectories) {
    support::expect(trajectory.frame_steps == series.frame_steps,
                    "run_experiment: recording grids diverged");
  }

  series.frames.resize(frame_count);
  for (std::size_t f = 0; f < frame_count; ++f) {
    series.frames[f].reserve(m);
    for (std::size_t s = 0; s < m; ++s) {
      series.frames[f].push_back(std::move(trajectories[s].frames[f]));
    }
  }
  series.equilibrium_steps.reserve(m);
  for (const sim::Trajectory& trajectory : trajectories) {
    series.equilibrium_steps.push_back(trajectory.equilibrium_step);
  }
  return series;
}

}  // namespace sops::core
