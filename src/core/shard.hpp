// Shard-level helpers of the crash-safe recording subsystem: the
// experiment config hash that ties a shard file to the run that produced
// it, and the merge/verify step that assembles disjoint-slot shards into
// one recording. The per-shard run/resume logic itself lives in
// run_experiment (core/experiment.hpp, ExperimentConfig::shard); the
// manifest codec in io/shard_manifest.hpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "io/shard_manifest.hpp"

namespace sops::core {

/// Hash of everything that determines the recorded trajectories: the
/// interaction model (force-law kind + all pair matrices), the per-particle
/// type assignment, cut-off and initialization radii, integrator
/// parameters, step/stride grid, equilibrium-detector parameters, master
/// seed, and the ensemble size m. Deliberately *excludes* pure scheduling
/// and storage choices (threads, parallel policy, neighbor backend, Verlet
/// skin, spill settings): those are bitwise-neutral by the engine's
/// reproducibility contract, so two shards may legitimately run with
/// different ones and still merge. FNV-1a over the native byte encoding —
/// stable within a machine, which is the scope shard files already have.
[[nodiscard]] std::uint64_t experiment_config_hash(
    const ExperimentConfig& config);

/// The manifest a shard run of `config` is expected to carry — dims,
/// frame-step grid, seed, config hash, the shard's slot range, and an
/// all-clear completion state. Fresh runs write exactly this; resumes
/// validate the on-disk manifest against it.
[[nodiscard]] io::ShardManifest expected_shard_manifest(
    const ExperimentConfig& config);

/// Outcome of merge_shards, for reporting.
struct MergeResult {
  std::string data_path;      ///< the merged recording (a 1-shard file)
  std::string manifest_path;  ///< its manifest, slot range [0, m), complete
  std::size_t shard_count = 0;
  std::size_t samples_total = 0;
  std::size_t payload_bytes = 0;
};

/// Assembles N completed shards (each `path` with its `path + ".manifest"`
/// sidecar) into one recording at `out_path` (+ manifest). Verification is
/// strict — mismatched dims/grid/seed/config hash across shards, slot
/// ranges that overlap or fail to cover [0, samples_total), an incomplete
/// bitmap, or a data file whose size contradicts its manifest all throw
/// sops::Error naming the offending shard. The merged output is
/// bitwise-identical to a single-process run of the whole ensemble
/// (sample slots are disjoint extents of the same F·m·n grid), and is
/// itself a valid shard: resume-open it to analyze without recomputing.
MergeResult merge_shards(const std::vector<std::string>& shard_paths,
                         const std::string& out_path);

}  // namespace sops::core
