// Flat, cache-friendly storage for recorded ensembles.
//
// One contiguous [frame][sample][particle] buffer replaces the former
// triple-nested vector-of-vector-of-vector: a frame is a stride of
// m·n Vec2, a sample within it a stride of n, so per-frame analysis walks
// a single linear block and the ensemble driver streams each sample's
// frames straight into its slots (no staging copy, no per-frame
// allocations). Views hand out spans, keeping the analyzer/alignment call
// sites pointer-free.
//
// Storage backing is selectable (StorageMode): the default keeps the block
// on the heap; `kMapped` backs it with a memory-mapped spill file created
// at full size upfront — the recording grid F·m·n is known before the
// first step — so paper-sized recordings (m = 500+, long stride) stop
// being RAM-bound: producers still write disjoint sample_slot spans
// concurrently, and flush_samples() pushes finished extents to disk and
// drops them from the resident set while the run continues. `kAuto` spills
// only when the projected payload crosses a threshold. The swap is purely
// a storage-layer concern: every accessor hands out the same spans/views
// either way, so the analyzer and alignment paths run unchanged on mapped
// recordings. Mapping failures (unwritable spill_dir, …) fall back to heap
// silently — see io::MappedBuffer.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "geom/frame_view.hpp"
#include "geom/vec2.hpp"
#include "io/mapped_buffer.hpp"

namespace sops::support {
class Executor;
}  // namespace sops::support

namespace sops::core {

/// Where a FrameStore keeps its position block.
enum class StorageMode {
  kHeap,    ///< std::vector backing (the default)
  kMapped,  ///< mmap'd spill file, created at full size upfront
  kAuto,    ///< kMapped once the projected bytes() crosses auto_spill_bytes
};

/// Backing selection for a FrameStore (config keys `frame_storage`,
/// `spill_dir`, `spill_threshold_mb` — see core/config_builder.hpp).
struct FrameStoreOptions {
  StorageMode mode = StorageMode::kHeap;
  /// Directory the spill file is created in (must exist; an unwritable or
  /// missing directory falls back to heap).
  std::string spill_dir = ".";
  /// kAuto spills once frames·samples·particles·sizeof(Vec2) is at least
  /// this many bytes. Default: 256 MiB.
  std::size_t auto_spill_bytes = std::size_t{256} << 20;
};

/// Owning [frame][sample][particle] position block.
class FrameStore {
 public:
  FrameStore() = default;
  FrameStore(std::size_t frames, std::size_t samples, std::size_t particles);
  FrameStore(std::size_t frames, std::size_t samples, std::size_t particles,
             const FrameStoreOptions& options);

  [[nodiscard]] std::size_t frame_count() const noexcept { return frames_; }
  [[nodiscard]] std::size_t sample_count() const noexcept { return samples_; }
  [[nodiscard]] std::size_t particle_count() const noexcept {
    return particles_;
  }
  /// Number of frames (container-style alias of frame_count()).
  [[nodiscard]] std::size_t size() const noexcept { return frames_; }
  [[nodiscard]] bool empty() const noexcept { return frames_ == 0; }

  /// View of frame f: all m samples at one recorded step.
  [[nodiscard]] geom::FrameView operator[](std::size_t f) const noexcept {
    return {data_ + f * samples_ * particles_, samples_, particles_};
  }
  /// First / last frame. Throws PreconditionError on an empty store — a
  /// zero-frame recording has no frames to view, and the former noexcept
  /// accessors underflowed frames_ - 1 into a wild out-of-bounds view.
  [[nodiscard]] geom::FrameView front() const;
  [[nodiscard]] geom::FrameView back() const;

  /// Configuration of sample s at frame f.
  [[nodiscard]] std::span<const geom::Vec2> sample(std::size_t f,
                                                   std::size_t s) const noexcept {
    return {data_ + (f * samples_ + s) * particles_, particles_};
  }
  /// Writable slot for streaming producers. Distinct (f, s) slots are
  /// disjoint memory and may be filled concurrently (mapped or heap —
  /// the backing never changes the layout).
  [[nodiscard]] std::span<geom::Vec2> sample_slot(std::size_t f,
                                                  std::size_t s) noexcept {
    return {data_ + (f * samples_ + s) * particles_, particles_};
  }

  /// Size of the position payload in bytes (the per-frame footprint the
  /// perf bench reports is bytes() / frame_count()).
  [[nodiscard]] std::size_t bytes() const noexcept {
    return frames_ * samples_ * particles_ * sizeof(geom::Vec2);
  }

  /// The backing actually in use: kHeap or kMapped, never kAuto (and kHeap
  /// when a requested mapping fell back).
  [[nodiscard]] StorageMode storage() const noexcept {
    return buffer_.mapped() ? StorageMode::kMapped : StorageMode::kHeap;
  }
  /// Path of the spill file; empty when heap-backed.
  [[nodiscard]] const std::string& spill_path() const noexcept {
    return buffer_.path();
  }
  /// Why a requested mapping fell back to heap; empty otherwise.
  [[nodiscard]] const std::string& spill_fallback_reason() const noexcept {
    return fallback_reason_;
  }

  /// Pushes the extents of samples [begin, end) — across every frame — to
  /// the spill file and drops their pages from the resident set. Sample
  /// ranges are contiguous within each frame, so the per-frame extents are
  /// disjoint file ranges: concurrent flushes of disjoint sample ranges
  /// (one per ensemble chunk) are safe, exactly like concurrent
  /// sample_slot writes. When `executor` is non-null the per-frame msync
  /// calls are sharded over its width (the engine lends its step executor,
  /// keeping the flush off the sample fan-out). No-op on heap backing.
  void flush_samples(std::size_t begin, std::size_t end,
                     support::Executor* executor = nullptr);

  /// Hints the kernel that the store will now be read front to back — the
  /// analyzer's frame-by-frame pass over a finished recording. No-op on
  /// heap backing.
  void advise_sequential_reads() noexcept { buffer_.advise_sequential(); }

 private:
  std::size_t frames_ = 0;
  std::size_t samples_ = 0;
  std::size_t particles_ = 0;
  geom::Vec2* data_ = nullptr;  // into heap_ or buffer_; stable under move
  std::vector<geom::Vec2> heap_;
  io::MappedBuffer buffer_;  // engaged only when actually mapped
  std::string fallback_reason_;
};

}  // namespace sops::core
