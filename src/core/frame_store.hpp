// Flat, cache-friendly storage for recorded ensembles.
//
// One contiguous [frame][sample][particle] buffer replaces the former
// triple-nested vector-of-vector-of-vector: a frame is a stride of
// m·n Vec2, a sample within it a stride of n, so per-frame analysis walks
// a single linear block and the ensemble driver streams each sample's
// frames straight into its slots (no staging copy, no per-frame
// allocations). Views hand out spans, keeping the analyzer/alignment call
// sites pointer-free.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "geom/frame_view.hpp"
#include "geom/vec2.hpp"

namespace sops::core {

/// Owning [frame][sample][particle] position block.
class FrameStore {
 public:
  FrameStore() = default;
  FrameStore(std::size_t frames, std::size_t samples, std::size_t particles);

  [[nodiscard]] std::size_t frame_count() const noexcept { return frames_; }
  [[nodiscard]] std::size_t sample_count() const noexcept { return samples_; }
  [[nodiscard]] std::size_t particle_count() const noexcept {
    return particles_;
  }
  /// Number of frames (container-style alias of frame_count()).
  [[nodiscard]] std::size_t size() const noexcept { return frames_; }
  [[nodiscard]] bool empty() const noexcept { return frames_ == 0; }

  /// View of frame f: all m samples at one recorded step.
  [[nodiscard]] geom::FrameView operator[](std::size_t f) const noexcept {
    return {data_.data() + f * samples_ * particles_, samples_, particles_};
  }
  [[nodiscard]] geom::FrameView front() const noexcept { return (*this)[0]; }
  [[nodiscard]] geom::FrameView back() const noexcept {
    return (*this)[frames_ - 1];
  }

  /// Configuration of sample s at frame f.
  [[nodiscard]] std::span<const geom::Vec2> sample(std::size_t f,
                                                   std::size_t s) const noexcept {
    return {data_.data() + (f * samples_ + s) * particles_, particles_};
  }
  /// Writable slot for streaming producers. Distinct (f, s) slots are
  /// disjoint memory and may be filled concurrently.
  [[nodiscard]] std::span<geom::Vec2> sample_slot(std::size_t f,
                                                  std::size_t s) noexcept {
    return {data_.data() + (f * samples_ + s) * particles_, particles_};
  }

  /// Size of the position payload in bytes (the per-frame footprint the
  /// perf bench reports is bytes() / frame_count()).
  [[nodiscard]] std::size_t bytes() const noexcept {
    return data_.size() * sizeof(geom::Vec2);
  }

 private:
  std::size_t frames_ = 0;
  std::size_t samples_ = 0;
  std::size_t particles_ = 0;
  std::vector<geom::Vec2> data_;
};

}  // namespace sops::core
