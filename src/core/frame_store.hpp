// Flat, cache-friendly storage for recorded ensembles.
//
// One contiguous [frame][sample][particle] buffer replaces the former
// triple-nested vector-of-vector-of-vector: a frame is a stride of
// m·n Vec2, a sample within it a stride of n, so per-frame analysis walks
// a single linear block and the ensemble driver streams each sample's
// frames straight into its slots (no staging copy, no per-frame
// allocations). Views hand out spans, keeping the analyzer/alignment call
// sites pointer-free.
//
// Storage backing is selectable (StorageMode): the default keeps the block
// on the heap; `kMapped` backs it with a memory-mapped spill file created
// at full size upfront — the recording grid F·m·n is known before the
// first step — so paper-sized recordings (m = 500+, long stride) stop
// being RAM-bound: producers still write disjoint sample_slot spans
// concurrently, and flush_samples() pushes finished extents to disk and
// drops them from the resident set while the run continues. `kAuto` spills
// only when the projected payload crosses a threshold. The swap is purely
// a storage-layer concern: every accessor hands out the same spans/views
// either way, so the analyzer and alignment paths run unchanged on mapped
// recordings. Mapping failures (unwritable spill_dir, …) fall back to heap
// silently — see io::MappedBuffer.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "geom/frame_view.hpp"
#include "geom/vec2.hpp"
#include "io/mapped_buffer.hpp"

namespace sops::support {
class Executor;
}  // namespace sops::support

namespace sops::core {

/// Where a FrameStore keeps its position block.
enum class StorageMode {
  kHeap,    ///< std::vector backing (the default)
  kMapped,  ///< mmap'd spill file, created at full size upfront
  kAuto,    ///< kMapped once the projected bytes() crosses auto_spill_bytes
};

/// Backing selection for a FrameStore (config keys `frame_storage`,
/// `spill_dir`, `spill_threshold_mb` — see core/config_builder.hpp).
struct FrameStoreOptions {
  StorageMode mode = StorageMode::kHeap;
  /// Directory the spill file is created in (must exist; an unwritable or
  /// missing directory falls back to heap).
  std::string spill_dir = ".";
  /// kAuto spills once frames·samples·particles·sizeof(Vec2) is at least
  /// this many bytes. Default: 256 MiB.
  std::size_t auto_spill_bytes = std::size_t{256} << 20;
  /// Non-empty turns the store into a durable *shard*: the payload is
  /// backed by exactly this file (not a generated scratch name in
  /// spill_dir), kept — and MS_SYNC'd — on clean destruction instead of
  /// unlinked, and reopenable later. Unlike scratch spill, shard mode has
  /// no silent heap fallback: durability is the point, so any mapping
  /// failure throws sops::Error with the reason. `mode` is ignored (a
  /// shard is always mapped).
  std::string shard_path;
  /// With shard_path: reopen an existing shard file (size-validated
  /// against the F·m·n payload) instead of creating a fresh one. The
  /// existing bytes are the recording — resume reads completed samples
  /// straight from the file.
  bool open_existing = false;
};

/// Best-effort reclamation of spill files leaked by crashed runs: removes
/// `sops_frames_<pid>_*.spill` entries in `spill_dir` whose recorded pid is
/// no longer alive *and* whose mtime is older than a safety window (both
/// gates, so a just-created file of a racing process or a recycled pid is
/// never touched). Persist-mode shards use caller-chosen names and are
/// never matched. Invoked automatically when a store creates a scratch
/// spill; never throws, never reports — reclamation is housekeeping, not a
/// correctness step (O_EXCL + timestamped names already keep leaked files
/// from colliding with live ones).
void sweep_stale_spill_files(const std::string& spill_dir) noexcept;

/// Owning [frame][sample][particle] position block.
class FrameStore {
 public:
  FrameStore() = default;
  FrameStore(std::size_t frames, std::size_t samples, std::size_t particles);
  FrameStore(std::size_t frames, std::size_t samples, std::size_t particles,
             const FrameStoreOptions& options);

  [[nodiscard]] std::size_t frame_count() const noexcept { return frames_; }
  [[nodiscard]] std::size_t sample_count() const noexcept { return samples_; }
  [[nodiscard]] std::size_t particle_count() const noexcept {
    return particles_;
  }
  /// Number of frames (container-style alias of frame_count()).
  [[nodiscard]] std::size_t size() const noexcept { return frames_; }
  [[nodiscard]] bool empty() const noexcept { return frames_ == 0; }

  /// View of frame f: all m samples at one recorded step.
  [[nodiscard]] geom::FrameView operator[](std::size_t f) const noexcept {
    return {data_ + f * samples_ * particles_, samples_, particles_};
  }
  /// First / last frame. Throws PreconditionError on an empty store — a
  /// zero-frame recording has no frames to view, and the former noexcept
  /// accessors underflowed frames_ - 1 into a wild out-of-bounds view.
  [[nodiscard]] geom::FrameView front() const;
  [[nodiscard]] geom::FrameView back() const;

  /// Configuration of sample s at frame f.
  [[nodiscard]] std::span<const geom::Vec2> sample(std::size_t f,
                                                   std::size_t s) const noexcept {
    return {data_ + (f * samples_ + s) * particles_, particles_};
  }
  /// Writable slot for streaming producers. Distinct (f, s) slots are
  /// disjoint memory and may be filled concurrently (mapped or heap —
  /// the backing never changes the layout).
  [[nodiscard]] std::span<geom::Vec2> sample_slot(std::size_t f,
                                                  std::size_t s) noexcept {
    return {data_ + (f * samples_ + s) * particles_, particles_};
  }

  /// Size of the position payload in bytes (the per-frame footprint the
  /// perf bench reports is bytes() / frame_count()).
  [[nodiscard]] std::size_t bytes() const noexcept {
    return frames_ * samples_ * particles_ * sizeof(geom::Vec2);
  }

  /// The backing actually in use: kHeap or kMapped, never kAuto (and kHeap
  /// when a requested mapping fell back).
  [[nodiscard]] StorageMode storage() const noexcept {
    return buffer_.mapped() ? StorageMode::kMapped : StorageMode::kHeap;
  }
  /// Path of the spill file; empty when heap-backed.
  [[nodiscard]] const std::string& spill_path() const noexcept {
    return buffer_.path();
  }
  /// Why a requested mapping fell back to heap; empty otherwise.
  [[nodiscard]] const std::string& spill_fallback_reason() const noexcept {
    return fallback_reason_;
  }
  /// First spill I/O failure seen by flush_samples/sync_samples (msync or
  /// madvise errno text), empty while everything succeeded. Spill flushes
  /// are asynchronous hints, so a failing spill device surfaces here — in
  /// the run report — instead of vanishing into ignored return values.
  [[nodiscard]] std::string flush_error() const;

  /// Pushes the extents of samples [begin, end) — across every frame — to
  /// the spill file and drops their pages from the resident set. Sample
  /// ranges are contiguous within each frame, so the per-frame extents are
  /// disjoint file ranges: concurrent flushes of disjoint sample ranges
  /// (one per ensemble chunk) are safe, exactly like concurrent
  /// sample_slot writes. When `executor` is non-null the per-frame msync
  /// calls are sharded over its width (the engine lends its step executor,
  /// keeping the flush off the sample fan-out). No-op on heap backing.
  void flush_samples(std::size_t begin, std::size_t end,
                     support::Executor* executor = nullptr);

  /// Durable variant of flush_samples(): blocks until the extents of
  /// samples [begin, end) are on disk (msync MS_SYNC per frame extent),
  /// then drops their pages. This is the barrier a shard run needs before
  /// flipping a sample's completion bit in the manifest. Returns false —
  /// with the reason in flush_error() — when any extent failed to sync;
  /// the caller must then *not* mark the sample complete. Returns true on
  /// heap backing (nothing to make durable — but shard stores are never
  /// heap-backed by construction).
  [[nodiscard]] bool sync_samples(std::size_t begin, std::size_t end,
                                  support::Executor* executor = nullptr);

  /// Hints the kernel that the store will now be read front to back — the
  /// analyzer's frame-by-frame pass over a finished recording. No-op on
  /// heap backing.
  void advise_sequential_reads() noexcept { buffer_.advise_sequential(); }

 private:
  // First-failure slot shared by concurrent flushes; behind a unique_ptr so
  // the store stays movable (EnsembleSeries carries it by value).
  struct IoErrorState {
    std::mutex mutex;
    std::string message;
  };

  template <typename FlushFrame>
  void for_each_frame_extent(support::Executor* executor, FlushFrame&& flush);
  void note_io_error(const char* operation);

  std::size_t frames_ = 0;
  std::size_t samples_ = 0;
  std::size_t particles_ = 0;
  geom::Vec2* data_ = nullptr;  // into heap_ or buffer_; stable under move
  std::vector<geom::Vec2> heap_;
  io::MappedBuffer buffer_;  // engaged only when actually mapped
  std::string fallback_reason_;
  std::unique_ptr<IoErrorState> io_error_;  // engaged only when mapped
};

}  // namespace sops::core
