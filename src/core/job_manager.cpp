#include "core/job_manager.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <span>
#include <utility>

#include "sim/parallel_policy.hpp"
#include "support/error.hpp"

namespace sops::core {
namespace {

/// Forwarding observer the job driver installs on every run: passes the
/// frame-level stream through to the job's analyzer (when one is attached)
/// and turns the per-sample boundary into the manager's progress/streaming
/// event, with the live series in hand.
class JobRunObserver final : public RecordingObserver {
 public:
  JobRunObserver(RecordingObserver* inner,
                 std::function<void(const EnsembleSeries&)> on_start,
                 std::function<void(std::size_t, const EnsembleSeries&)>
                     on_sample)
      : inner_(inner),
        on_start_(std::move(on_start)),
        on_sample_(std::move(on_sample)) {}

  void on_recording_started(const EnsembleSeries& series) override {
    series_ = &series;
    if (on_start_) on_start_(series);
    if (inner_ != nullptr) inner_->on_recording_started(series);
  }

  void on_frames_recorded(std::size_t begin_frame, std::size_t end_frame,
                          std::size_t local_sample) override {
    if (inner_ != nullptr) {
      inner_->on_frames_recorded(begin_frame, end_frame, local_sample);
    }
  }

  void on_sample_recorded(std::size_t local_sample) override {
    if (inner_ != nullptr) inner_->on_sample_recorded(local_sample);
    if (on_sample_) on_sample_(local_sample, *series_);
  }

 private:
  RecordingObserver* inner_;
  const EnsembleSeries* series_ = nullptr;
  std::function<void(const EnsembleSeries&)> on_start_;
  std::function<void(std::size_t, const EnsembleSeries&)> on_sample_;
};

/// Local sample-slot count of a config: the shard's slice when sharding is
/// on, the whole ensemble otherwise — mirrors run_experiment's slot math.
std::size_t local_samples(const ExperimentConfig& config) {
  if (config.shard.path.empty()) return config.samples;
  const support::ChunkRange slots = support::chunk_range(
      config.shard.index, config.samples, config.shard.count);
  return slots.end - slots.begin;
}

void append_json_string(std::string& out, const std::string& value) {
  out += '"';
  for (const char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

const char* to_string(JobState state) noexcept {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kAdmitted: return "admitted";
    case JobState::kRunning: return "running";
    case JobState::kStreaming: return "streaming";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "unknown";
}

/// Everything the manager tracks per job. Entries are append-only and live
/// until the manager is destroyed, so driver/observer threads may hold
/// plain pointers across unlocked sections.
struct JobManager::Job {
  Job(std::uint64_t id_, ConfiguredExperiment configured_, JobOptions options_,
      const support::CancelToken* root)
      : id(id_),
        configured(std::move(configured_)),
        options(std::move(options_)),
        token(root) {}

  const std::uint64_t id;
  ConfiguredExperiment configured;
  JobOptions options;
  support::CancelToken token;  // chained to the manager's shutdown root

  // Guarded by JobManager::mutex_.
  JobState state = JobState::kQueued;
  std::size_t samples_done = 0;
  std::size_t samples_total = 0;
  std::size_t payload_bytes = 0;
  std::size_t resident_bytes = 0;
  bool resident_charged = false;
  std::string error;
  std::string flush_error;
  bool analyzed = false;
  double delta_mi = 0.0;
  bool outcome_taken = false;
  std::optional<JobOutcome> outcome;
};

JobManager::JobManager(JobLimits limits) : limits_(limits) {
  if (limits_.machine_threads == 0) {
    limits_.machine_threads = support::default_thread_count();
  }
  if (limits_.job_slots == 0) limits_.job_slots = 1;

  // Carve the machine budget once: slot j's share is resolve_job_threads,
  // of which one runner is the slot's driver thread — so the pool only
  // needs the shares' worker remainders, and the slices are disjoint by
  // the same prefix-sum arithmetic run_partitioned uses inside a job.
  std::vector<std::size_t> shares(limits_.job_slots);
  std::size_t workers_total = 0;
  for (std::size_t j = 0; j < limits_.job_slots; ++j) {
    shares[j] = sim::resolve_job_threads(j, limits_.job_slots,
                                         limits_.machine_threads);
    workers_total += shares[j] - 1;
  }
  pool_ = std::make_unique<support::TaskPool>(workers_total + 1);
  slices_.reserve(limits_.job_slots);
  std::size_t first = 0;
  for (std::size_t j = 0; j < limits_.job_slots; ++j) {
    slices_.push_back(support::slice_of(*pool_, first, shares[j] - 1));
    first += shares[j] - 1;
  }

  drivers_.reserve(limits_.job_slots);
  for (std::size_t j = 0; j < limits_.job_slots; ++j) {
    drivers_.emplace_back([this, j] { drive(j); });
  }
}

JobManager::~JobManager() {
  shutdown_.request();
  std::vector<Job*> queued;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
    for (const std::uint64_t id : queue_) {
      Job* job = find_locked(id);
      if (job != nullptr) {
        job->error = "job cancelled: manager shutting down";
        queued.push_back(job);
      }
    }
    queue_.clear();
  }
  for (Job* job : queued) set_state(*job, JobState::kCancelled);
  cv_.notify_all();
  for (std::thread& driver : drivers_) driver.join();
  // pool_ outlives the joined drivers (member order), so no slice is ever
  // dangling while a job could still dispatch on it.
}

std::uint64_t JobManager::submit(ConfiguredExperiment configured,
                                 JobOptions options) {
  const std::size_t payload = projected_payload_bytes(configured.experiment);
  const std::size_t resident = projected_resident_bytes(configured.experiment);
  if (resident > limits_.memory_budget_bytes) {
    throw Error("JobManager::submit: projected resident recording of " +
                std::to_string(resident) + " bytes exceeds the memory budget (" +
                std::to_string(limits_.memory_budget_bytes) +
                " bytes); spill it with frame_storage = mapped");
  }

  Job* job = nullptr;
  JobStatus snapshot;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (shutting_down_) {
      throw Error("JobManager::submit: manager is shutting down");
    }
    auto owned = std::make_unique<Job>(next_id_++, std::move(configured),
                                       std::move(options), &shutdown_);
    job = owned.get();
    job->samples_total = local_samples(job->configured.experiment);
    job->payload_bytes = payload;
    job->resident_bytes = resident;
    queue_.push_back(job->id);
    jobs_.push_back(std::move(owned));
    snapshot = snapshot_locked(*job);
  }
  cv_.notify_all();
  if (job->options.events.on_state_change) {
    job->options.events.on_state_change(snapshot);
  }
  return job->id;
}

bool JobManager::cancel(std::uint64_t id) {
  Job* job = nullptr;
  bool was_queued = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    job = find_locked(id);
    if (job == nullptr || is_terminal(job->state)) return false;
    if (job->state == JobState::kQueued) {
      queue_.erase(std::remove(queue_.begin(), queue_.end(), id),
                   queue_.end());
      job->error = "job cancelled while queued";
      was_queued = true;
    }
    job->token.request();
  }
  // A queued job has no driver to transition it; a running one drains at
  // its next poll point and its driver records the terminal state.
  if (was_queued) set_state(*job, JobState::kCancelled);
  return true;
}

JobStatus JobManager::status(std::uint64_t id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const Job* job = find_locked(id);
  if (job == nullptr) {
    throw Error("JobManager::status: unknown job id " + std::to_string(id));
  }
  return snapshot_locked(*job);
}

std::vector<JobStatus> JobManager::statuses() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<JobStatus> out;
  out.reserve(jobs_.size());
  for (const auto& job : jobs_) out.push_back(snapshot_locked(*job));
  return out;
}

JobOutcome JobManager::wait(std::uint64_t id) {
  std::unique_lock<std::mutex> lock(mutex_);
  Job* job = find_locked(id);
  if (job == nullptr) {
    throw Error("JobManager::wait: unknown job id " + std::to_string(id));
  }
  cv_.wait(lock, [&] { return is_terminal(job->state); });
  if (job->state == JobState::kCancelled) {
    throw CancelledError(job->error.empty() ? "job cancelled" : job->error);
  }
  if (job->state == JobState::kFailed) throw Error(job->error);
  if (job->outcome_taken || !job->outcome.has_value()) {
    throw Error("JobManager::wait: outcome of job " + std::to_string(id) +
                " was already taken");
  }
  job->outcome_taken = true;
  JobOutcome outcome = std::move(*job->outcome);
  job->outcome.reset();
  return outcome;
}

std::size_t JobManager::projected_payload_bytes(const ExperimentConfig& config) {
  const std::size_t frames =
      sim::recording_steps(config.simulation.steps,
                           config.simulation.record_stride)
          .size();
  return frames * local_samples(config) * config.simulation.types.size() *
         sizeof(geom::Vec2);
}

std::size_t JobManager::projected_resident_bytes(
    const ExperimentConfig& config) {
  // Shard recordings are always mapped to their durable file; a mapped (or
  // auto-spilling) scratch store drops finished extents from the resident
  // set as it goes. Only a heap-resident recording holds its payload in
  // RAM for the whole run.
  if (!config.shard.path.empty()) return 0;
  const std::size_t payload = projected_payload_bytes(config);
  switch (config.storage.mode) {
    case StorageMode::kMapped: return 0;
    case StorageMode::kAuto:
      return payload >= config.storage.auto_spill_bytes ? 0 : payload;
    case StorageMode::kHeap: break;
  }
  return payload;
}

void JobManager::drive(std::size_t slot) {
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      for (;;) {
        // FIFO-with-skip admission: the oldest queued job whose resident
        // charge fits under the budget next to everything already running.
        for (std::size_t i = 0; i < queue_.size(); ++i) {
          Job* candidate = find_locked(queue_[i]);
          if (candidate == nullptr) continue;
          if (resident_bytes_ + candidate->resident_bytes <=
              limits_.memory_budget_bytes) {
            queue_.erase(queue_.begin() +
                         static_cast<std::ptrdiff_t>(i));
            job = candidate;
            break;
          }
        }
        if (job != nullptr) break;
        if (shutting_down_) return;
        // wait_for, not wait: a signal handler raising the shutdown token
        // cannot notify a condition variable, so drivers poll.
        cv_.wait_for(lock, std::chrono::milliseconds(100));
      }
      job->state = JobState::kAdmitted;
      job->resident_charged = true;
      resident_bytes_ += job->resident_bytes;
    }
    cv_.notify_all();
    {
      JobStatus snapshot;
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        snapshot = snapshot_locked(*job);
      }
      if (job->options.events.on_state_change) {
        job->options.events.on_state_change(snapshot);
      }
    }
    run_job(*job, slot);
  }
}

void JobManager::run_job(Job& job, std::size_t slot) {
  set_state(job, JobState::kRunning);

  // Declaration order matters: `outcome` (owning the frame store) before
  // `analyzer`, so the analyzer — whose destructor joins a consumer that
  // reads views into that store — is destroyed first on every exit path.
  JobOutcome outcome;
  std::optional<StreamingAnalyzer> analyzer;
  if (job.options.analysis == JobAnalysis::kStreamed) {
    analyzer.emplace(job.configured.analysis, &job.token);
  }

  JobRunObserver observer(
      analyzer.has_value() ? &*analyzer : nullptr,
      [&](const EnsembleSeries& series) {
        // Resumed shard samples never replay on_sample_recorded; count
        // them up front so progress reflects the whole slot range.
        if (series.resumed_samples == 0) return;
        const std::lock_guard<std::mutex> lock(mutex_);
        job.samples_done = series.resumed_samples;
      },
      [&](std::size_t local_sample, const EnsembleSeries& series) {
        note_sample(job, local_sample, series);
      });

  ExperimentConfig config = job.configured.experiment;
  config.observer = &observer;
  config.cancel = &job.token;
  config.pool = &slices_[slot];

  try {
    outcome.series = run_experiment(config);
    const std::string flush_error = outcome.series.frames.flush_error();
    if (!flush_error.empty()) {
      // A failed spill flush means the recording on disk is not what the
      // run computed — that is a failed job, not a successful one with a
      // warning buried in a log line.
      throw Error("job " + std::to_string(job.id) +
                  ": recording flush failed: " + flush_error);
    }
    if (job.options.analysis == JobAnalysis::kStreamed) {
      set_state(job, JobState::kStreaming);
      outcome.analysis = analyzer->finish();
    } else if (job.options.analysis == JobAnalysis::kPostHoc) {
      set_state(job, JobState::kStreaming);
      support::CancelToken::check(&job.token,
                                  "job cancelled before analysis");
      outcome.analysis =
          analyze_self_organization(outcome.series, job.configured.analysis);
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (outcome.analysis.has_value()) {
        job.analyzed = true;
        job.delta_mi = outcome.analysis->delta_mi();
      }
      job.outcome.emplace(std::move(outcome));
    }
    set_state(job, JobState::kDone);
  } catch (const CancelledError& cancelled) {
    if (analyzer.has_value()) analyzer->abort();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      job.error = cancelled.what();
    }
    set_state(job, JobState::kCancelled);
  } catch (const std::exception& failure) {
    if (analyzer.has_value()) analyzer->abort();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      job.error = failure.what();
    }
    set_state(job, JobState::kFailed);
  }
}

void JobManager::set_state(Job& job, JobState state) {
  JobStatus snapshot;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    job.state = state;
    if (is_terminal(state) && job.resident_charged) {
      resident_bytes_ -= job.resident_bytes;
      job.resident_charged = false;
    }
    snapshot = snapshot_locked(job);
  }
  cv_.notify_all();
  if (job.options.events.on_state_change) {
    job.options.events.on_state_change(snapshot);
  }
}

void JobManager::note_sample(Job& job, std::size_t local_sample,
                             const EnsembleSeries& series) {
  JobSampleEvent event;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++job.samples_done;
    const std::string flush_error = series.frames.flush_error();
    if (!flush_error.empty()) job.flush_error = flush_error;
    event.job = job.id;
    event.local_sample = local_sample;
    event.samples_done = job.samples_done;
    event.samples_total = job.samples_total;
    event.equilibrium_step = series.equilibrium_steps[local_sample];
    event.series = &series;
  }
  if (job.options.events.on_sample_done) {
    job.options.events.on_sample_done(event);
  }
}

JobStatus JobManager::snapshot_locked(const Job& job) const {
  JobStatus status;
  status.id = job.id;
  status.state = job.state;
  status.samples_done = job.samples_done;
  status.samples_total = job.samples_total;
  status.payload_bytes = job.payload_bytes;
  status.resident_bytes = job.resident_bytes;
  status.error = job.error;
  status.flush_error = job.flush_error;
  status.analyzed = job.analyzed;
  status.delta_mi = job.delta_mi;
  return status;
}

JobManager::Job* JobManager::find_locked(std::uint64_t id) noexcept {
  // Ids are assigned 1, 2, … in submission order, so the append-only list
  // is indexable directly.
  if (id == 0 || id > jobs_.size()) return nullptr;
  return jobs_[id - 1].get();
}

const JobManager::Job* JobManager::find_locked(std::uint64_t id) const noexcept {
  if (id == 0 || id > jobs_.size()) return nullptr;
  return jobs_[id - 1].get();
}

std::string sample_recording_csv(const EnsembleSeries& series,
                                 std::size_t local_sample) {
  support::expect(local_sample < series.sample_count(),
                  "sample_recording_csv: sample out of range");
  std::string out = "frame,step,particle,x,y\n";
  char row[128];
  for (std::size_t f = 0; f < series.frame_count(); ++f) {
    const std::span<const geom::Vec2> positions =
        series.frames.sample(f, local_sample);
    for (std::size_t p = 0; p < positions.size(); ++p) {
      std::snprintf(row, sizeof row, "%zu,%zu,%zu,%.17g,%.17g\n", f,
                    series.frame_steps[f], p, positions[p].x, positions[p].y);
      out += row;
    }
  }
  return out;
}

io::CsvTable analysis_csv_table(const AnalysisResult& result,
                                bool with_entropies) {
  io::CsvTable table;
  table.header = {"t", "multi_information_bits"};
  if (with_entropies) {
    table.header.push_back("joint_entropy_bits");
    table.header.push_back("marginal_entropy_sum_bits");
  }
  for (const TimePoint& point : result.points) {
    std::vector<double> row{static_cast<double>(point.step),
                            point.multi_information};
    if (with_entropies) {
      row.push_back(point.joint_entropy);
      row.push_back(point.marginal_entropy_sum);
    }
    table.add_row(std::move(row));
  }
  return table;
}

std::string job_status_json(const JobStatus& status) {
  char buffer[256];
  std::string out = "{\"id\":";
  out += std::to_string(status.id);
  out += ",\"state\":\"";
  out += to_string(status.state);
  out += "\",\"samples_done\":";
  out += std::to_string(status.samples_done);
  out += ",\"samples_total\":";
  out += std::to_string(status.samples_total);
  out += ",\"payload_bytes\":";
  out += std::to_string(status.payload_bytes);
  out += ",\"resident_bytes\":";
  out += std::to_string(status.resident_bytes);
  out += ",\"analyzed\":";
  out += status.analyzed ? "true" : "false";
  if (status.analyzed) {
    std::snprintf(buffer, sizeof buffer, ",\"delta_mi_bits\":%.17g",
                  status.delta_mi);
    out += buffer;
  }
  out += ",\"error\":";
  append_json_string(out, status.error);
  out += ",\"flush_error\":";
  append_json_string(out, status.flush_error);
  out += "}";
  return out;
}

}  // namespace sops::core
